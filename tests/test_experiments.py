"""Integration tests for the experiment drivers (fast presets).

These use the heavily reduced ``fast()`` configs, so they check that every
driver runs end-to-end and produces the expected table schema, not that the
resulting numbers match the paper (that is the benchmarks' job).

The drivers are deliberately called through their legacy keyword signatures
(``repetitions=``, ``workers=``, ...) — this module doubles as coverage for
the deprecation shim, so the resulting DeprecationWarnings are expected and
silenced here (the declarative path is covered by tests/test_api.py).
"""

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:the per-driver engine keywords:DeprecationWarning"
)

from repro.experiments import (
    DroneConfig,
    ExperimentScale,
    GridNNConfig,
    GridTabularConfig,
    get_scale,
)
from repro.experiments import config as config_module
from repro.experiments import (
    fig2_training,
    fig3_return_curves,
    fig4_convergence,
    fig5_inference,
    fig7_drone,
    fig8_mitigation_training,
    fig9_exploration,
    fig10_anomaly,
    summary,
)
from repro.experiments.common import build_drone_bundle, clear_drone_cache, greedy_policy, train_tabular
from repro.io.results import ResultTable


@pytest.fixture(scope="module")
def fast_tabular():
    return GridTabularConfig.fast()


@pytest.fixture(scope="module")
def fast_nn():
    return GridNNConfig.fast()


@pytest.fixture(scope="module")
def fast_drone():
    return DroneConfig.fast()


@pytest.fixture(scope="module")
def drone_bundle(fast_drone):
    bundle = build_drone_bundle(fast_drone, seed=0)
    yield bundle
    clear_drone_cache()


class TestConfig:
    def test_scale_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() is ExperimentScale.SMALL
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is ExperimentScale.PAPER
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            get_scale()

    def test_sweeps_depend_on_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        small = config_module.grid_ber_sweep()
        monkeypatch.setenv("REPRO_SCALE", "paper")
        paper = config_module.grid_ber_sweep()
        assert len(paper) > len(small)
        assert len(config_module.injection_episodes(1000)) == 11

    def test_fast_presets_are_smaller(self):
        assert GridTabularConfig.fast().episodes < GridTabularConfig().episodes
        assert GridNNConfig.fast().episodes < GridNNConfig().episodes
        assert DroneConfig.fast().pretrain_epochs < DroneConfig().pretrain_epochs


class TestGridWorldDrivers:
    def test_fig2_transient_schema(self, fast_tabular):
        table = fig2_training.run_transient_training_heatmap(
            fast_tabular, [0.0, 0.01], [0, 100], repetitions=1
        )
        assert len(table) == 4
        assert set(table.columns) >= {"bit_error_rate", "injection_episode", "success_rate"}
        matrix = fig2_training.heatmap_matrix(table, [0.0, 0.01], [0, 100])
        assert matrix.shape == (2, 2)
        assert not np.isnan(matrix).any()

    def test_fig2_permanent_schema(self, fast_tabular):
        table = fig2_training.run_permanent_training_sweep(fast_tabular, [0.01], repetitions=1)
        fault_types = set(table.column("fault_type"))
        assert fault_types == {"stuck-at-0", "stuck-at-1"}

    def test_fig2_histograms(self, fast_tabular, fast_nn):
        table = fig2_training.run_value_histograms(fast_tabular, fast_nn, seed=1)
        assert len(table) == 2
        for row in table.rows:
            assert 0.0 < row["zero_fraction"] < 1.0

    def test_fig3_curves(self, fast_tabular):
        scenarios = fig3_return_curves.default_scenarios(fast_tabular.episodes, "tabular")[:2]
        series = fig3_return_curves.run_return_curves(fast_tabular, scenarios, seed=2)
        assert len(series.series) == 2
        assert all(len(v) == len(series.x_values) for v in series.series.values())

    def test_fig3_recovery_metric(self):
        curve = [1.0] * 10 + [0.0] * 5 + [0.95] * 5
        assert fig3_return_curves.recovery_episodes(curve, 10) == 5
        assert fig3_return_curves.recovery_episodes([1.0] * 5 + [0.0] * 5, 5) is None
        with pytest.raises(ValueError):
            fig3_return_curves.recovery_episodes(curve, 100)

    def test_fig4_transient_convergence(self, fast_tabular):
        table = fig4_convergence.run_transient_convergence(
            fast_tabular, [0.0, 0.01], extra_episodes=60, repetitions=1
        )
        assert len(table) == 2
        assert all(row["episodes_to_converge"] >= 0 for row in table.rows)

    def test_fig4_permanent_extra_training(self, fast_tabular):
        table = fig4_convergence.run_permanent_extra_training(
            fast_tabular, [0.01], extra_episode_grid=(50,), repetitions=1
        )
        assert len(table) == 2

    def test_fig5_inference_modes(self, fast_tabular):
        table = fig5_inference.run_inference_fault_sweep(
            fast_tabular, [0.01], fault_modes=("transient-1", "transient-m"),
            repetitions=1, episodes_per_trial=2,
        )
        modes = set(table.column("fault_mode"))
        assert modes == {"baseline", "transient-1", "transient-m"}

    def test_fig5_rejects_unknown_mode(self, fast_tabular):
        with pytest.raises(ValueError):
            fig5_inference.run_inference_fault_sweep(fast_tabular, [0.01], fault_modes=("bogus",))

    def test_fig5_parallel_matches_serial(self, fast_tabular):
        # The fig5 trials clone a *shared* trained agent, which historically
        # consumed the agent's RNG and made outcomes depend on execution
        # order; trials must be pure functions of their trial RNG so worker
        # count (and checkpoint resume) cannot change the reported rates.
        kwargs = dict(
            fault_modes=("transient-1", "stuck-at-1"),
            repetitions=2,
            episodes_per_trial=2,
        )
        serial = fig5_inference.run_inference_fault_sweep(
            fast_tabular, [0.01], workers=1, **kwargs
        )
        parallel = fig5_inference.run_inference_fault_sweep(
            fast_tabular, [0.01], workers=2, **kwargs
        )
        assert serial.rows == parallel.rows

    def test_fig8_mitigated_heatmap(self, fast_tabular):
        table = fig8_mitigation_training.run_mitigated_transient_heatmap(
            fast_tabular, [0.01], [50], mitigation=True, repetitions=1
        )
        assert table.rows[0]["mitigation"] is True

    def test_fig9_exploration_sweep(self, fast_tabular):
        table = fig9_exploration.run_exploration_adjustment_sweep(
            fast_tabular, [0.01], fault_types=("transient",), repetitions=1
        )
        assert "adjusted_exploration_ratio" in table.columns
        assert "episodes_to_steady" in table.columns

    def test_fig9_recovery_correlation(self, fast_tabular):
        table = fig9_exploration.run_recovery_speed_correlation(
            fast_tabular, exploration_boosts=(0.5,), repetitions=1
        )
        assert len(table) == 1

    def test_fig10_gridworld(self, fast_nn):
        table = fig10_anomaly.run_gridworld_anomaly_mitigation(
            fast_nn, [0.0, 0.01], repetitions=1, episodes_per_trial=1
        )
        assert len(table) == 4
        assert set(table.column("mitigation")) == {True, False}

    def test_summary_gain_table(self):
        table = ResultTable(title="t")
        table.add(mitigation=False, bit_error_rate=0.01, success_rate=0.4)
        table.add(mitigation=True, bit_error_rate=0.01, success_rate=0.8)
        gains = summary.summarize_mitigation_gains(table, "success_rate")
        assert gains.rows[0]["improvement_factor"] == pytest.approx(2.0)


class TestDroneDrivers:
    def test_bundle_is_cached(self, fast_drone, drone_bundle):
        again = build_drone_bundle(fast_drone, seed=0)
        assert again is drone_bundle

    def test_fig7b_environments(self, fast_drone, drone_bundle):
        table = fig7_drone.run_environment_comparison(fast_drone, [0.0, 1e-2], repetitions=1)
        assert set(table.column("environment")) == {"indoor-long", "indoor-vanleer"}
        assert all(row["mean_safe_flight"] >= 0 for row in table.rows)

    def test_fig7c_locations(self, fast_drone, drone_bundle):
        table = fig7_drone.run_fault_location_sweep(fast_drone, [1e-2], repetitions=1)
        assert set(table.column("location")) == {
            "input",
            "weight",
            "activation-transient",
            "activation-permanent",
        }

    def test_fig7d_layers(self, fast_drone, drone_bundle):
        table = fig7_drone.run_layer_sweep(fast_drone, [1e-2], layers=("conv1", "fc2"), repetitions=1)
        assert set(table.column("layer")) == {"conv1", "fc2"}

    def test_fig7e_datatypes(self, fast_drone, drone_bundle):
        table = fig7_drone.run_datatype_sweep(fast_drone, [1e-2], repetitions=1)
        assert len(set(table.column("qformat"))) == 3

    def test_fig7a_training(self, fast_drone, drone_bundle):
        table = fig7_drone.run_drone_training_faults(fast_drone, [0.0, 1e-2], repetitions=1)
        assert set(table.column("fault_type")) == {"transient", "stuck-at-0", "stuck-at-1"}

    def test_fig10b_drone(self, fast_drone, drone_bundle):
        table = fig10_anomaly.run_drone_anomaly_mitigation(fast_drone, [0.0, 1e-2], repetitions=1)
        assert len(table) == 4


class TestCleanBaseline:
    def test_tabular_default_config_converges(self):
        config = GridTabularConfig(episodes=500, eval_trials=10)
        agent, eval_env, _ = train_tabular(config, np.random.default_rng(0))
        from repro.experiments.common import evaluate_grid_policy

        rate = evaluate_grid_policy(greedy_policy(agent), eval_env, 10, max_steps=100)
        assert rate >= 0.9
