"""Tests for the Grid World and drone environments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    HIGH_DENSITY,
    LOW_DENSITY,
    MIDDLE_DENSITY,
    GridLayout,
    GridWorld,
    make_drone_env,
    make_gridworld,
)
from repro.envs.drone import (
    ActionSpace25,
    CorridorWorld,
    DepthCamera,
    DroneNavEnv,
    Rect,
    indoor_long,
    indoor_vanleer,
    wrap_angle,
)
from repro.envs.drone.expert import GreedyDepthExpert, collect_dataset
from repro.envs.gridworld import ACTION_DELTAS, GOAL, HELL


class TestGridLayouts:
    def test_all_layouts_have_path(self):
        for density in ("low", "middle", "high"):
            env = make_gridworld(density)
            assert env.shortest_path_length() > 0

    def test_density_ordering(self):
        assert (
            LOW_DENSITY.obstacle_density()
            < MIDDLE_DENSITY.obstacle_density()
            < HIGH_DENSITY.obstacle_density()
        )

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            GridLayout("bad", ("S.", "G"))  # ragged
        with pytest.raises(ValueError):
            GridLayout("bad", ("S.", ".."))  # no goal
        with pytest.raises(ValueError):
            GridLayout("bad", ("SG", "X."))  # invalid symbol

    def test_find_and_cell(self):
        assert MIDDLE_DENSITY.find("S") == (0, 0)
        assert MIDDLE_DENSITY.cell(9, 9) == GOAL

    def test_unknown_density_rejected(self):
        with pytest.raises(ValueError):
            make_gridworld("extreme")


class TestGridWorldDynamics:
    def test_reset_returns_source(self, grid_env):
        assert grid_env.reset() == grid_env.source_state

    def test_step_moves_agent(self, grid_env):
        grid_env.reset()
        state, reward, done, info = grid_env.step(3)  # right
        assert state == 1
        assert reward == 0.0
        assert not done

    def test_boundary_bump_keeps_position(self, grid_env):
        grid_env.reset()
        state, reward, done, _ = grid_env.step(0)  # up from row 0
        assert state == grid_env.source_state
        assert not done

    def test_bump_reward_applied(self):
        env = make_gridworld("middle", bump_reward=-0.5)
        env.reset()
        _, reward, _, _ = env.step(0)
        assert reward == -0.5

    def test_goal_gives_positive_reward_and_success(self):
        env = make_gridworld("middle")
        env.reset()
        # Walk along a path found by BFS to reach the goal.
        from collections import deque

        start, goal = (0, 0), (9, 9)
        parents = {start: None}
        queue = deque([start])
        while queue:
            cell = queue.popleft()
            if cell == goal:
                break
            for action, (dr, dc) in ACTION_DELTAS.items():
                nxt = (cell[0] + dr, cell[1] + dc)
                if not (0 <= nxt[0] < 10 and 0 <= nxt[1] < 10):
                    continue
                if nxt in parents or env.layout.cell(*nxt) == HELL:
                    continue
                parents[nxt] = (cell, action)
                queue.append(nxt)
        actions = []
        cell = goal
        while parents[cell] is not None:
            cell, action = parents[cell]
            actions.append(action)
        for action in reversed(actions):
            state, reward, done, info = env.step(action)
        assert done and info["success"] and reward == 1.0

    def test_hell_terminates_with_negative_reward(self):
        env = make_gridworld("middle")
        env.reset()
        env.step(3)  # (0,1)
        env.step(1)  # (1,1)
        _, reward, done, info = env.step(3)  # (1,2) is hell
        assert done and reward == -1.0 and not info["success"]

    def test_invalid_action_rejected(self, grid_env):
        grid_env.reset()
        with pytest.raises(ValueError):
            grid_env.step(7)

    def test_one_hot_encoding(self, grid_env):
        encoded = grid_env.one_hot(42)
        assert encoded.shape == (100,)
        assert encoded.sum() == 1.0 and encoded[42] == 1.0

    def test_random_start_varies(self, rng):
        env = make_gridworld("middle", random_start=True, rng=rng)
        starts = {env.reset() for _ in range(30)}
        assert len(starts) > 3
        for start in starts:
            row, col = env.position_of(start)
            assert env.layout.cell(row, col) != HELL

    def test_state_index_round_trip(self, grid_env):
        for state in (0, 37, 99):
            assert grid_env.state_index(grid_env.position_of(state)) == state
        with pytest.raises(ValueError):
            grid_env.position_of(100)

    def test_render_marks_agent(self, grid_env):
        grid_env.reset()
        assert "A" in grid_env.render()


class TestCorridorWorld:
    def test_rect_validation(self):
        with pytest.raises(ValueError):
            Rect(1.0, 1.0, 1.0, 2.0)

    def test_rect_contains_with_margin(self):
        rect = Rect(0, 0, 1, 1)
        assert rect.contains(1.2, 0.5, margin=0.3)
        assert not rect.contains(1.2, 0.5, margin=0.1)

    def test_ray_hits_rectangle(self):
        rect = Rect(5, -1, 6, 1)
        assert rect.ray_intersection(0, 0, 1, 0) == pytest.approx(5.0)
        assert rect.ray_intersection(0, 0, -1, 0) is None
        assert rect.ray_intersection(0, 5, 1, 0) is None

    def test_boundary_distance(self):
        world = indoor_long()
        # Looking straight down the corridor from the start.
        distance = world.ray_distance(2.0, 3.0, 0.0, max_range=200.0)
        assert distance <= world.length

    def test_is_free_and_clearance(self):
        world = indoor_vanleer()
        assert world.is_free(2.0, 3.0)
        assert not world.is_free(9.5, 1.0)  # inside the first obstacle
        assert world.clearance(2.0, 3.0) > 0

    def test_start_pose_must_be_free(self):
        with pytest.raises(ValueError):
            CorridorWorld(10, 5, [Rect(0, 0, 5, 5)], start_pose=(1, 1, 0))


class TestCameraAndActions:
    def test_image_shape(self):
        camera = DepthCamera(width=16, height=12)
        world = indoor_long()
        image = camera.render(world, 2.0, 3.0, 0.0)
        assert image.shape == (1, 12, 16)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_close_obstacle_brighter_than_far(self):
        camera = DepthCamera(width=8, height=8, max_range=20.0)
        world = indoor_long()
        near = camera.render(world, 11.0, 1.0, 0.0)  # right in front of an obstacle
        far = camera.render(world, 2.0, 3.0, 0.0)
        assert near.mean() > far.mean()

    def test_camera_validation(self):
        with pytest.raises(ValueError):
            DepthCamera(width=1)
        with pytest.raises(ValueError):
            DepthCamera(fov_degrees=200)

    def test_action_space_commands(self):
        actions = ActionSpace25()
        assert actions.n_actions == 25
        yaw, forward = actions.command(actions.straight_action)
        assert yaw == pytest.approx(0.0)
        assert forward == 1.0
        left_yaw, _ = actions.command(0)
        right_yaw, _ = actions.command(24)
        assert left_yaw > 0 > right_yaw
        with pytest.raises(ValueError):
            actions.command(25)


class TestDroneEnv:
    def test_reset_observation_shape(self):
        env = make_drone_env("indoor-long", image_size=24)
        state = env.reset()
        assert state.shape == (1, 24, 24)

    def test_straight_flight_accumulates_distance(self):
        env = make_drone_env("indoor-long", image_size=24)
        env.reset()
        total = 0.0
        for _ in range(10):
            _, reward, done, info = env.step(env.actions.straight_action)
            total = info["flight_distance"]
            if done:
                break
        assert total > 5.0

    def test_collision_terminates(self):
        env = make_drone_env("indoor-vanleer", image_size=24)
        env.reset()
        done = False
        for _ in range(200):
            _, reward, done, info = env.step(env.actions.straight_action)
            if done:
                break
        assert done

    def test_stall_detection_ends_episode(self):
        env = make_drone_env("indoor-long", image_size=24, stall_window=6, stall_distance=2.0)
        env.reset()
        done = False
        # Hard-left turns make the drone circle in place.
        for _ in range(60):
            _, _, done, info = env.step(0)
            if done:
                break
        assert done
        assert info["flight_distance"] < 30.0

    def test_invalid_environment_name(self):
        with pytest.raises(ValueError):
            make_drone_env("indoor-unknown")

    def test_unknown_action_rejected(self):
        env = make_drone_env("indoor-long", image_size=24)
        env.reset()
        with pytest.raises(ValueError):
            env.step(99)

    def test_collision_on_first_substep_reports_zero_flight(self):
        # An obstacle 0.25 m in front of the start (within collision_radius)
        # must terminate on the very first substep with no distance flown.
        world = CorridorWorld(10.0, 6.0, [Rect(2.5, 0.0, 3.5, 6.0)], (2.0, 3.0, 0.0))
        env = DroneNavEnv(world=world, camera=DepthCamera(16, 16))
        env.reset()
        _, reward, done, info = env.step(env.actions.straight_action)
        assert done
        assert reward == env.collision_penalty
        assert info["flight_distance"] == 0.0
        assert info["success"] is False

    def test_success_exactly_at_max_flight_distance(self):
        # Four 0.25 m substeps reach max_flight_distance=1.0 exactly; the
        # >= comparison must declare success on the boundary.
        world = CorridorWorld(20.0, 6.0, [], (2.0, 3.0, 0.0))
        env = DroneNavEnv(
            world=world, camera=DepthCamera(16, 16), max_flight_distance=1.0
        )
        env.reset()
        _, _, done, info = env.step(env.actions.straight_action)
        assert done
        assert info["success"] is True
        assert info["flight_distance"] == 1.0

    def test_stall_rollback_restores_progress_distance(self):
        # A loitering policy's reported flight distance must equal the
        # distance at the point where progress stopped (stall_window steps
        # before detection), not the inflated circling distance.
        env = make_drone_env(
            "indoor-long", image_size=16, stall_window=6, stall_distance=2.0
        )
        env.reset()
        flights = [0.0]
        done = False
        step = 0
        while not done:
            step += 1
            _, reward, done, info = env.step(0)
            flights.append(info["flight_distance"])
        assert reward == env.collision_penalty / 2.0  # stalled, not collided
        assert info["flight_distance"] == flights[step - env.stall_window]
        assert env.flight_distance == info["flight_distance"]

    def test_heading_stays_wrapped_during_circling(self):
        env = make_drone_env("indoor-long", image_size=16, stall_distance=0.0)
        env.reset()
        for _ in range(40):
            _, _, done, _ = env.step(0)  # winds far past 2*pi unwrapped
            heading = env.pose[2]
            assert -np.pi < heading <= np.pi
            assert not done

    def test_trajectory_golden(self):
        # Pinned scalar trajectory (generated from this revision): guards
        # the heading-wrap change and any future vectorization refactors.
        env = make_drone_env("indoor-long", image_size=16)
        env.reset()
        golden = [
            (12, 3.0, 3.0, 0.0, 0.59999999999999998, 1.0),
            (10, 3.9848077530122072, 3.1736481776669301, 0.17453292519943295, 0.57105863705551163, 2.0),
            (14, 4.9848077530122072, 3.1736481776669301, 0.0, 0.57105863705551163, 3.0),
            (12, 5.9848077530122072, 3.1736481776669301, 0.0, 0.57105863705551163, 4.0),
            (8, 6.9245003737981161, 3.5156683209925994, 0.3490658503988659, 0.51405527983456678, 5.0),
            (16, 7.9245003737981161, 3.5156683209925994, 0.0, 0.51405527983456678, 6.0),
            (12, 8.9245003737981161, 3.5156683209925994, 0.0, 0.51405527983456678, 7.0),
            (12, 9.9245003737981161, 3.5156683209925994, 0.0, 0.51405527983456678, 8.0),
        ]
        for action, x, y, heading, reward, flight in golden:
            _, got_reward, done, info = env.step(action)
            assert env.pose[0] == pytest.approx(x, rel=1e-6)
            assert env.pose[1] == pytest.approx(y, rel=1e-6)
            assert env.pose[2] == pytest.approx(heading, rel=1e-6, abs=1e-12)
            assert got_reward == pytest.approx(reward, rel=1e-6)
            assert info["flight_distance"] == pytest.approx(flight, rel=1e-6)
            assert not done


class TestWrapAngle:
    def test_values(self):
        assert float(wrap_angle(0.0)) == 0.0
        assert float(wrap_angle(np.pi)) == np.pi
        assert float(wrap_angle(-np.pi)) == pytest.approx(np.pi)
        assert float(wrap_angle(3 * np.pi / 2)) == pytest.approx(-np.pi / 2)
        assert float(wrap_angle(-3 * np.pi / 2)) == pytest.approx(np.pi / 2)

    def test_in_range_angles_bit_unchanged(self):
        vals = np.linspace(-3.14, 3.14, 13)
        assert np.array_equal(wrap_angle(vals), vals)

    def test_wrapped_angles_preserve_direction(self):
        big = np.array([7.0, -7.0, 123.456, -50.0])
        wrapped = wrap_angle(big)
        assert np.all((wrapped > -np.pi) & (wrapped <= np.pi))
        np.testing.assert_allclose(np.cos(wrapped), np.cos(big), atol=1e-12)
        np.testing.assert_allclose(np.sin(wrapped), np.sin(big), atol=1e-12)


class TestClearanceFan:
    def test_no_duplicate_rays(self):
        # endpoint=False excludes 2*pi, so no direction is cast twice.
        angles = np.linspace(0.0, 2.0 * np.pi, 16, endpoint=False)
        assert len(np.unique(np.mod(angles, 2.0 * np.pi))) == len(angles)

    def test_batched_clearance_matches_scalar(self):
        world = indoor_long()
        rng = np.random.default_rng(5)
        xs = rng.uniform(1.0, 90.0, 32)
        ys = rng.uniform(0.5, 5.5, 32)
        batched = world.clearances(xs, ys)
        scalar = np.array([world.clearance(x, y) for x, y in zip(xs, ys)])
        assert np.array_equal(batched, scalar)


class TestDroneExpert:
    def test_expert_scores_shape_and_range(self):
        env = make_drone_env("indoor-long", image_size=24)
        env.reset()
        expert = GreedyDepthExpert(env)
        scores = expert.action_scores()
        assert scores.shape == (25,)
        assert scores.min() >= 0.0

    def test_expert_flies_reasonably_far(self):
        env = make_drone_env("indoor-long", image_size=24)
        expert = GreedyDepthExpert(env)
        env.reset()
        distance = 0.0
        for _ in range(150):
            _, _, done, info = env.step(expert.select_action())
            distance = info["flight_distance"]
            if done:
                break
        assert distance > 30.0

    def test_collect_dataset_shapes(self, rng):
        env = make_drone_env("indoor-long", image_size=24)
        expert = GreedyDepthExpert(env)
        images, targets = collect_dataset(env, expert, 12, rng)
        assert images.shape == (12, 1, 24, 24)
        assert targets.shape == (12, 25)

    def test_collect_dataset_invalid_count(self, rng):
        env = make_drone_env("indoor-long", image_size=24)
        with pytest.raises(ValueError):
            collect_dataset(env, GreedyDepthExpert(env), 0, rng)


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(min_value=0.5, max_value=99.5),
    y=st.floats(min_value=0.5, max_value=5.5),
    angle=st.floats(min_value=-np.pi, max_value=np.pi),
)
def test_property_ray_distance_nonnegative_and_bounded(x, y, angle):
    world = indoor_long()
    distance = world.ray_distance(x, y, angle, max_range=25.0)
    assert 0.0 <= distance <= 25.0
