"""Tests for the Grid World and drone environments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    HIGH_DENSITY,
    LOW_DENSITY,
    MIDDLE_DENSITY,
    GridLayout,
    GridWorld,
    make_drone_env,
    make_gridworld,
)
from repro.envs.drone import ActionSpace25, CorridorWorld, DepthCamera, Rect, indoor_long, indoor_vanleer
from repro.envs.drone.expert import GreedyDepthExpert, collect_dataset
from repro.envs.gridworld import ACTION_DELTAS, GOAL, HELL


class TestGridLayouts:
    def test_all_layouts_have_path(self):
        for density in ("low", "middle", "high"):
            env = make_gridworld(density)
            assert env.shortest_path_length() > 0

    def test_density_ordering(self):
        assert (
            LOW_DENSITY.obstacle_density()
            < MIDDLE_DENSITY.obstacle_density()
            < HIGH_DENSITY.obstacle_density()
        )

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            GridLayout("bad", ("S.", "G"))  # ragged
        with pytest.raises(ValueError):
            GridLayout("bad", ("S.", ".."))  # no goal
        with pytest.raises(ValueError):
            GridLayout("bad", ("SG", "X."))  # invalid symbol

    def test_find_and_cell(self):
        assert MIDDLE_DENSITY.find("S") == (0, 0)
        assert MIDDLE_DENSITY.cell(9, 9) == GOAL

    def test_unknown_density_rejected(self):
        with pytest.raises(ValueError):
            make_gridworld("extreme")


class TestGridWorldDynamics:
    def test_reset_returns_source(self, grid_env):
        assert grid_env.reset() == grid_env.source_state

    def test_step_moves_agent(self, grid_env):
        grid_env.reset()
        state, reward, done, info = grid_env.step(3)  # right
        assert state == 1
        assert reward == 0.0
        assert not done

    def test_boundary_bump_keeps_position(self, grid_env):
        grid_env.reset()
        state, reward, done, _ = grid_env.step(0)  # up from row 0
        assert state == grid_env.source_state
        assert not done

    def test_bump_reward_applied(self):
        env = make_gridworld("middle", bump_reward=-0.5)
        env.reset()
        _, reward, _, _ = env.step(0)
        assert reward == -0.5

    def test_goal_gives_positive_reward_and_success(self):
        env = make_gridworld("middle")
        env.reset()
        # Walk along a path found by BFS to reach the goal.
        from collections import deque

        start, goal = (0, 0), (9, 9)
        parents = {start: None}
        queue = deque([start])
        while queue:
            cell = queue.popleft()
            if cell == goal:
                break
            for action, (dr, dc) in ACTION_DELTAS.items():
                nxt = (cell[0] + dr, cell[1] + dc)
                if not (0 <= nxt[0] < 10 and 0 <= nxt[1] < 10):
                    continue
                if nxt in parents or env.layout.cell(*nxt) == HELL:
                    continue
                parents[nxt] = (cell, action)
                queue.append(nxt)
        actions = []
        cell = goal
        while parents[cell] is not None:
            cell, action = parents[cell]
            actions.append(action)
        for action in reversed(actions):
            state, reward, done, info = env.step(action)
        assert done and info["success"] and reward == 1.0

    def test_hell_terminates_with_negative_reward(self):
        env = make_gridworld("middle")
        env.reset()
        env.step(3)  # (0,1)
        env.step(1)  # (1,1)
        _, reward, done, info = env.step(3)  # (1,2) is hell
        assert done and reward == -1.0 and not info["success"]

    def test_invalid_action_rejected(self, grid_env):
        grid_env.reset()
        with pytest.raises(ValueError):
            grid_env.step(7)

    def test_one_hot_encoding(self, grid_env):
        encoded = grid_env.one_hot(42)
        assert encoded.shape == (100,)
        assert encoded.sum() == 1.0 and encoded[42] == 1.0

    def test_random_start_varies(self, rng):
        env = make_gridworld("middle", random_start=True, rng=rng)
        starts = {env.reset() for _ in range(30)}
        assert len(starts) > 3
        for start in starts:
            row, col = env.position_of(start)
            assert env.layout.cell(row, col) != HELL

    def test_state_index_round_trip(self, grid_env):
        for state in (0, 37, 99):
            assert grid_env.state_index(grid_env.position_of(state)) == state
        with pytest.raises(ValueError):
            grid_env.position_of(100)

    def test_render_marks_agent(self, grid_env):
        grid_env.reset()
        assert "A" in grid_env.render()


class TestCorridorWorld:
    def test_rect_validation(self):
        with pytest.raises(ValueError):
            Rect(1.0, 1.0, 1.0, 2.0)

    def test_rect_contains_with_margin(self):
        rect = Rect(0, 0, 1, 1)
        assert rect.contains(1.2, 0.5, margin=0.3)
        assert not rect.contains(1.2, 0.5, margin=0.1)

    def test_ray_hits_rectangle(self):
        rect = Rect(5, -1, 6, 1)
        assert rect.ray_intersection(0, 0, 1, 0) == pytest.approx(5.0)
        assert rect.ray_intersection(0, 0, -1, 0) is None
        assert rect.ray_intersection(0, 5, 1, 0) is None

    def test_boundary_distance(self):
        world = indoor_long()
        # Looking straight down the corridor from the start.
        distance = world.ray_distance(2.0, 3.0, 0.0, max_range=200.0)
        assert distance <= world.length

    def test_is_free_and_clearance(self):
        world = indoor_vanleer()
        assert world.is_free(2.0, 3.0)
        assert not world.is_free(9.5, 1.0)  # inside the first obstacle
        assert world.clearance(2.0, 3.0) > 0

    def test_start_pose_must_be_free(self):
        with pytest.raises(ValueError):
            CorridorWorld(10, 5, [Rect(0, 0, 5, 5)], start_pose=(1, 1, 0))


class TestCameraAndActions:
    def test_image_shape(self):
        camera = DepthCamera(width=16, height=12)
        world = indoor_long()
        image = camera.render(world, 2.0, 3.0, 0.0)
        assert image.shape == (1, 12, 16)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_close_obstacle_brighter_than_far(self):
        camera = DepthCamera(width=8, height=8, max_range=20.0)
        world = indoor_long()
        near = camera.render(world, 11.0, 1.0, 0.0)  # right in front of an obstacle
        far = camera.render(world, 2.0, 3.0, 0.0)
        assert near.mean() > far.mean()

    def test_camera_validation(self):
        with pytest.raises(ValueError):
            DepthCamera(width=1)
        with pytest.raises(ValueError):
            DepthCamera(fov_degrees=200)

    def test_action_space_commands(self):
        actions = ActionSpace25()
        assert actions.n_actions == 25
        yaw, forward = actions.command(actions.straight_action)
        assert yaw == pytest.approx(0.0)
        assert forward == 1.0
        left_yaw, _ = actions.command(0)
        right_yaw, _ = actions.command(24)
        assert left_yaw > 0 > right_yaw
        with pytest.raises(ValueError):
            actions.command(25)


class TestDroneEnv:
    def test_reset_observation_shape(self):
        env = make_drone_env("indoor-long", image_size=24)
        state = env.reset()
        assert state.shape == (1, 24, 24)

    def test_straight_flight_accumulates_distance(self):
        env = make_drone_env("indoor-long", image_size=24)
        env.reset()
        total = 0.0
        for _ in range(10):
            _, reward, done, info = env.step(env.actions.straight_action)
            total = info["flight_distance"]
            if done:
                break
        assert total > 5.0

    def test_collision_terminates(self):
        env = make_drone_env("indoor-vanleer", image_size=24)
        env.reset()
        done = False
        for _ in range(200):
            _, reward, done, info = env.step(env.actions.straight_action)
            if done:
                break
        assert done

    def test_stall_detection_ends_episode(self):
        env = make_drone_env("indoor-long", image_size=24, stall_window=6, stall_distance=2.0)
        env.reset()
        done = False
        # Hard-left turns make the drone circle in place.
        for _ in range(60):
            _, _, done, info = env.step(0)
            if done:
                break
        assert done
        assert info["flight_distance"] < 30.0

    def test_invalid_environment_name(self):
        with pytest.raises(ValueError):
            make_drone_env("indoor-unknown")

    def test_unknown_action_rejected(self):
        env = make_drone_env("indoor-long", image_size=24)
        env.reset()
        with pytest.raises(ValueError):
            env.step(99)


class TestDroneExpert:
    def test_expert_scores_shape_and_range(self):
        env = make_drone_env("indoor-long", image_size=24)
        env.reset()
        expert = GreedyDepthExpert(env)
        scores = expert.action_scores()
        assert scores.shape == (25,)
        assert scores.min() >= 0.0

    def test_expert_flies_reasonably_far(self):
        env = make_drone_env("indoor-long", image_size=24)
        expert = GreedyDepthExpert(env)
        env.reset()
        distance = 0.0
        for _ in range(150):
            _, _, done, info = env.step(expert.select_action())
            distance = info["flight_distance"]
            if done:
                break
        assert distance > 30.0

    def test_collect_dataset_shapes(self, rng):
        env = make_drone_env("indoor-long", image_size=24)
        expert = GreedyDepthExpert(env)
        images, targets = collect_dataset(env, expert, 12, rng)
        assert images.shape == (12, 1, 24, 24)
        assert targets.shape == (12, 25)

    def test_collect_dataset_invalid_count(self, rng):
        env = make_drone_env("indoor-long", image_size=24)
        with pytest.raises(ValueError):
            collect_dataset(env, GreedyDepthExpert(env), 0, rng)


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(min_value=0.5, max_value=99.5),
    y=st.floats(min_value=0.5, max_value=5.5),
    angle=st.floats(min_value=-np.pi, max_value=np.pi),
)
def test_property_ray_distance_nonnegative_and_bounded(x, y, angle):
    world = indoor_long()
    distance = world.ray_distance(x, y, angle, max_range=25.0)
    assert 0.0 <= distance <= 25.0
