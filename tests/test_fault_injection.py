"""Tests for the fault-injection tool-chain (models, sites, injector, campaigns)."""

import numpy as np
import pytest

from repro.core import (
    ActivationFaultInjector,
    BufferSelector,
    Campaign,
    FaultInjector,
    FaultPattern,
    FaultType,
    InputFaultInjector,
    PermanentTrainingFaultHook,
    StuckAtFault,
    TransientBitFlip,
    TransientTrainingFaultHook,
    TrialOutcome,
    apply_patterns_stacked,
    make_fault_model,
)
from repro.core.campaign import default_repetitions
from repro.core.injector import inject_weight_faults
from repro.envs import make_gridworld
from repro.nn.buffers import QuantizedExecutor
from repro.policies import build_grid_q_network
from repro.quant import Q8_GRID, Q16_NARROW, QTensor
from repro.rl import ConstantSchedule, TabularQAgent, train_agent
from repro.rl.dqn import DQNAgent


class TestFaultModels:
    def test_fault_type_properties(self):
        assert not FaultType.TRANSIENT.is_permanent
        assert FaultType.STUCK_AT_0.is_permanent
        assert FaultType.STUCK_AT_1.is_permanent

    def test_factory(self):
        assert isinstance(make_fault_model("transient", 0.1), TransientBitFlip)
        assert make_fault_model("stuck-at-1", 0.1).stuck_value == 1
        assert make_fault_model(FaultType.STUCK_AT_0, 0.1).stuck_value == 0

    def test_invalid_ber_rejected(self):
        with pytest.raises(ValueError):
            TransientBitFlip(1.5)
        with pytest.raises(ValueError):
            StuckAtFault(0.1, stuck_value=3)

    def test_transient_injection_changes_bits(self, wide_qtensor, rng):
        before = wide_qtensor.raw
        pattern = TransientBitFlip(0.2).inject(wide_qtensor, rng)
        assert pattern.num_faults > 0
        assert not np.array_equal(wide_qtensor.raw, before)
        assert not pattern.is_permanent

    def test_stuck_at_pattern_reapplication_idempotent(self, wide_qtensor, rng):
        model = StuckAtFault(0.3, stuck_value=1)
        pattern = model.inject(wide_qtensor, rng)
        after_first = wide_qtensor.raw
        pattern.apply(wide_qtensor)
        assert np.array_equal(wide_qtensor.raw, after_first)
        assert pattern.is_permanent

    def test_zero_ber_injects_nothing(self, wide_qtensor, rng):
        before = wide_qtensor.raw
        pattern = TransientBitFlip(0.0).inject(wide_qtensor, rng)
        assert pattern.num_faults == 0
        assert np.array_equal(wide_qtensor.raw, before)


class TestFaultPatternAndSelector:
    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            FaultPattern("buf", np.array([0, 1]), np.array([0]), None)
        with pytest.raises(ValueError):
            FaultPattern("buf", np.array([0]), np.array([0]), stuck_value=5)

    def test_pattern_out_of_range_element(self):
        tensor = QTensor.zeros((2,), Q8_GRID, name="buf")
        pattern = FaultPattern("buf", np.array([5]), np.array([0]), None)
        with pytest.raises(ValueError):
            pattern.apply(tensor)

    def test_pattern_describe(self):
        pattern = FaultPattern("buf", np.array([0]), np.array([1]), stuck_value=1)
        info = pattern.describe()
        assert info["kind"] == "stuck-at-1" and info["num_faults"] == 1

    def test_selector_by_prefix_and_layer(self):
        buffers = {
            "weight:fc1.weight": QTensor.zeros((2, 2), Q8_GRID),
            "weight:fc2.weight": QTensor.zeros((2, 2), Q8_GRID),
            "activation:fc1": QTensor.zeros((2,), Q8_GRID),
        }
        assert set(BufferSelector.all_weights().select(buffers)) == {
            "weight:fc1.weight",
            "weight:fc2.weight",
        }
        assert set(BufferSelector.for_layer("fc1").select(buffers)) == {
            "weight:fc1.weight",
            "activation:fc1",
        }
        assert set(BufferSelector.by_name("activation:fc1").select(buffers)) == {
            "activation:fc1"
        }
        assert len(BufferSelector().select(buffers)) == 3

    def test_selector_no_match_raises(self):
        buffers = {"qtable": QTensor.zeros((2, 2), Q8_GRID)}
        with pytest.raises(ValueError):
            BufferSelector.by_name("missing").select(buffers)

    def test_selector_predicate(self):
        selector = BufferSelector(predicate=lambda name: name.endswith(".bias"))
        assert selector.matches("weight:fc1.bias")
        assert not selector.matches("weight:fc1.weight")


class TestFaultInjector:
    def test_inject_into_tabular_agent(self, rng):
        agent = TabularQAgent(10, 4, rng=rng)
        injector = FaultInjector(rng)
        patterns = injector.inject(agent, StuckAtFault(0.2, stuck_value=1))
        assert len(patterns) == 1
        assert np.any(agent.memory_buffers()["qtable"].raw != 0)

    def test_sample_then_reapply(self, rng):
        agent = TabularQAgent(10, 4, rng=rng)
        injector = FaultInjector(rng)
        patterns = injector.sample(agent, StuckAtFault(0.2, stuck_value=1))
        assert np.all(agent.memory_buffers()["qtable"].raw == 0)
        injector.reapply(agent, patterns)
        assert np.any(agent.memory_buffers()["qtable"].raw != 0)

    def test_reapply_unknown_buffer_raises(self, rng):
        agent = TabularQAgent(4, 2, rng=rng)
        injector = FaultInjector(rng)
        bad = FaultPattern("nonexistent", np.array([0]), np.array([0]), 1)
        with pytest.raises(KeyError):
            injector.reapply(agent, [bad])


class TestTrainingHooks:
    def test_transient_hook_fires_once_at_episode(self, rng):
        env = make_gridworld("low", rng=rng)
        agent = TabularQAgent(env.n_states, env.n_actions, schedule=ConstantSchedule(0.5), rng=rng)
        hook = TransientTrainingFaultHook(0.05, inject_episode=2, rng=rng)
        train_agent(agent, env, episodes=5, max_steps_per_episode=10, hooks=[hook])
        assert hook.has_injected
        assert sum(p.num_faults for p in hook.injected_patterns) > 0

    def test_transient_hook_step_level_injection(self, rng):
        env = make_gridworld("low", rng=rng)
        agent = TabularQAgent(env.n_states, env.n_actions, schedule=ConstantSchedule(0.5), rng=rng)
        hook = TransientTrainingFaultHook(0.05, inject_episode=1, inject_step=2, rng=rng)
        train_agent(agent, env, episodes=3, max_steps_per_episode=10, hooks=[hook])
        assert hook.has_injected

    def test_permanent_hook_keeps_bits_stuck(self, rng):
        env = make_gridworld("low", rng=rng)
        agent = TabularQAgent(env.n_states, env.n_actions, schedule=ConstantSchedule(0.5), rng=rng)
        hook = PermanentTrainingFaultHook(0.1, stuck_value=1, rng=rng)
        train_agent(agent, env, episodes=4, max_steps_per_episode=10, hooks=[hook])
        pattern = hook.patterns[0]
        raw = agent.memory_buffers()["qtable"].raw.reshape(-1)
        observed = (raw[pattern.element_indices] >> pattern.bit_positions) & 1
        assert np.all(observed == 1)

    def test_invalid_episode_rejected(self):
        with pytest.raises(ValueError):
            TransientTrainingFaultHook(0.1, inject_episode=-1)


class TestInferenceInjectors:
    def make_executor(self, rng):
        net = build_grid_q_network(10, 4, hidden_sizes=(8,), rng=rng)
        return QuantizedExecutor(net, Q16_NARROW)

    def test_inject_weight_faults_and_restore(self, rng):
        executor = self.make_executor(rng)
        clean = executor.network.state_dict()
        patterns = inject_weight_faults(executor, TransientBitFlip(0.05), rng=rng)
        assert sum(p.num_faults for p in patterns) > 0
        executor.restore_clean_weights()
        for key, value in executor.network.state_dict().items():
            assert np.allclose(value, clean[key])

    def test_weight_fault_selector_limits_layers(self, rng):
        executor = self.make_executor(rng)
        clean = executor.network.state_dict()
        inject_weight_faults(
            executor,
            TransientBitFlip(0.3),
            selector=BufferSelector.for_layer("fc2"),
            rng=rng,
        )
        state = executor.network.state_dict()
        assert np.allclose(state["fc1.weight"], clean["fc1.weight"], atol=1e-3)
        assert not np.allclose(state["fc2.weight"], clean["fc2.weight"], atol=1e-6)

    def test_activation_injector_transient(self, rng):
        executor = self.make_executor(rng)
        injector = ActivationFaultInjector(TransientBitFlip(0.3), layer_names=["fc2"], rng=rng)
        executor.activation_hooks.append(injector)
        executor.forward(np.eye(10)[:1])
        assert injector.injection_count == 1

    def test_activation_injector_permanent_requires_stuck_model(self, rng):
        with pytest.raises(ValueError):
            ActivationFaultInjector(TransientBitFlip(0.1), mode="permanent", rng=rng)
        with pytest.raises(ValueError):
            ActivationFaultInjector(TransientBitFlip(0.1), mode="bogus", rng=rng)

    def test_input_injector_only_hits_input(self, rng):
        executor = self.make_executor(rng)
        injector = InputFaultInjector(TransientBitFlip(0.3), rng=rng)
        executor.input_hooks.append(injector)
        executor.activation_hooks.append(injector)  # should ignore layer buffers
        executor.forward(np.eye(10)[:1])
        assert injector.injection_count == 1


class TestFaultRoundTrips:
    """Property-style invariants of the fault models and patterns."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("ber", [0.01, 0.1, 0.5])
    def test_transient_applied_twice_restores_bits(self, seed, ber):
        # Bit-flips are XOR involutions: re-applying the same pattern must
        # restore the original tensor bit-for-bit.
        rng = np.random.default_rng(seed)
        tensor = QTensor(rng.normal(0, 0.5, size=(6, 7)), Q16_NARROW, name="w")
        original = tensor.raw.copy()
        pattern = TransientBitFlip(ber).sample_pattern(tensor, rng)
        pattern.apply(tensor)
        if pattern.num_faults:
            assert not np.array_equal(tensor.raw, original)
        pattern.apply(tensor)
        assert np.array_equal(tensor.raw, original)

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize(
        "model",
        [TransientBitFlip(0.2), StuckAtFault(0.2, stuck_value=0), StuckAtFault(0.2, stuck_value=1)],
        ids=["transient", "sa0", "sa1"],
    )
    def test_sample_then_apply_equals_direct_inject(self, seed, model):
        # For the same RNG state, sampling a pattern and applying it must be
        # indistinguishable from model.inject (same sites, same bits).
        values = np.random.default_rng(99).uniform(-4, 4, size=(5, 8))
        t_sampled = QTensor(values, Q8_GRID, name="buf")
        t_injected = QTensor(values, Q8_GRID, name="buf")

        pattern = model.sample_pattern(t_sampled, np.random.default_rng(seed))
        assert np.array_equal(t_sampled.raw, t_injected.raw)  # sampling is pure
        pattern.apply(t_sampled)
        injected_pattern = model.inject(t_injected, np.random.default_rng(seed))

        assert np.array_equal(t_sampled.raw, t_injected.raw)
        assert np.array_equal(pattern.element_indices, injected_pattern.element_indices)
        assert np.array_equal(pattern.bit_positions, injected_pattern.bit_positions)
        assert pattern.stuck_value == injected_pattern.stuck_value

    def test_injector_sample_reapply_equals_inject(self):
        # The same invariant through the agent-level FaultInjector API.
        model = StuckAtFault(0.2, stuck_value=1)

        def make_agent():
            return TabularQAgent(12, 4, rng=np.random.default_rng(0))

        sampled_agent, injected_agent = make_agent(), make_agent()
        injector_a = FaultInjector(np.random.default_rng(21))
        patterns = injector_a.sample(sampled_agent, model)
        injector_a.reapply(sampled_agent, patterns)
        injector_b = FaultInjector(np.random.default_rng(21))
        injector_b.inject(injected_agent, model)
        assert np.array_equal(
            sampled_agent.memory_buffers()["qtable"].raw,
            injected_agent.memory_buffers()["qtable"].raw,
        )


class TestActivationPatternResampling:
    def make_executor(self, rng):
        net = build_grid_q_network(10, 4, hidden_sizes=(8,), rng=rng)
        return QuantizedExecutor(net, Q16_NARROW)

    def test_shrunken_buffer_resample_is_counted_and_logged(self, rng, caplog):
        # Activation buffers track the batch size; a permanent pattern sampled
        # on a large batch stops fitting when a smaller batch shrinks the
        # buffer and must be (visibly) resampled.
        executor = self.make_executor(rng)
        injector = ActivationFaultInjector(
            StuckAtFault(0.3, stuck_value=1), mode="permanent", rng=rng
        )
        executor.activation_hooks.append(injector)
        with caplog.at_level("WARNING", logger="repro.core.injector"):
            executor.forward(np.eye(10)[:8])  # batch 8: sample the patterns
            assert injector.resample_count == 0
            executor.forward(np.eye(10)[:1])  # batch 1: buffers shrink
        assert injector.resample_count > 0
        assert any("resampling fault sites" in r.message for r in caplog.records)

    def test_stable_buffer_size_never_resamples(self, rng):
        executor = self.make_executor(rng)
        injector = ActivationFaultInjector(
            StuckAtFault(0.3, stuck_value=1), mode="permanent", rng=rng
        )
        executor.activation_hooks.append(injector)
        executor.forward(np.eye(10)[:4])
        first_patterns = dict(injector._patterns)
        executor.forward(np.eye(10)[:4])
        assert injector.resample_count == 0
        assert all(injector._patterns[k] is v for k, v in first_patterns.items())


def _all_sites_pattern(tensor: QTensor, stuck_value=None) -> FaultPattern:
    """A pattern addressing every (element, bit) site of a unit buffer."""
    total_bits = tensor.qformat.total_bits
    elements = np.repeat(np.arange(tensor.size, dtype=np.int64), total_bits)
    bits = np.tile(np.arange(total_bits, dtype=np.int64), tensor.size)
    return FaultPattern(tensor.name, elements, bits, stuck_value=stuck_value)


class TestPatternEdgeCases:
    """Empty patterns, all-sites-faulty patterns, stacked-buffer persistence."""

    def test_empty_pattern_apply_is_noop(self, wide_qtensor):
        empty = FaultPattern("weights", np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        before = wide_qtensor.raw
        empty.apply(wide_qtensor)
        assert empty.num_faults == 0
        assert np.array_equal(wide_qtensor.raw, before)

    def test_stacked_apply_with_empty_and_none_entries(self, wide_qtensor):
        stacked = wide_qtensor.replicate(3)
        before = stacked.raw
        empty = FaultPattern("weights", np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        apply_patterns_stacked([None, empty, None], stacked)
        assert np.array_equal(stacked.raw, before)

    def test_ber_one_samples_every_site(self, wide_qtensor, rng):
        elements, bits = wide_qtensor.sample_fault_sites(1.0, rng)
        population = wide_qtensor.size * wide_qtensor.qformat.total_bits
        assert elements.size == population
        sites = set(zip(elements.tolist(), bits.tolist()))
        assert len(sites) == population  # without replacement: every site once

    def test_all_sites_stuck_at_saturates_buffer(self, wide_qtensor):
        word_mask = wide_qtensor.qformat.word_mask
        stuck1 = _all_sites_pattern(wide_qtensor, stuck_value=1)
        stuck1.apply(wide_qtensor)
        assert np.all(wide_qtensor.raw == word_mask)
        stuck0 = _all_sites_pattern(wide_qtensor, stuck_value=0)
        stuck0.apply(wide_qtensor)
        assert np.all(wide_qtensor.raw == 0)

    def test_all_sites_transient_is_involution(self, wide_qtensor):
        original = wide_qtensor.raw
        flip_all = _all_sites_pattern(wide_qtensor)
        flip_all.apply(wide_qtensor)
        assert np.array_equal(wide_qtensor.raw, original ^ wide_qtensor.qformat.word_mask)
        flip_all.apply(wide_qtensor)
        assert np.array_equal(wide_qtensor.raw, original)

    def test_all_sites_faulty_on_stacked_buffer(self, wide_qtensor):
        stacked = wide_qtensor.replicate(3)
        word_mask = wide_qtensor.qformat.word_mask
        patterns = [
            _all_sites_pattern(wide_qtensor, stuck_value=1),
            None,
            _all_sites_pattern(wide_qtensor, stuck_value=1),
        ]
        apply_patterns_stacked(patterns, stacked)
        raw = stacked.raw
        assert np.all(raw[0] == word_mask)
        assert np.array_equal(raw[1], wide_qtensor.raw)  # untouched replica
        assert np.all(raw[2] == word_mask)

    def test_stuck_at_reapply_after_rewrite_on_stacked_buffer(self, wide_qtensor, rng):
        # Permanent faults must keep forcing their bits after the stacked
        # memory is rewritten (training updates, buffer refreshes, ...).
        stacked = wide_qtensor.replicate(4)
        model = StuckAtFault(0.25, stuck_value=1)
        patterns = [
            model.sample_pattern(wide_qtensor, np.random.default_rng(seed))
            for seed in range(4)
        ]
        apply_patterns_stacked(patterns, stacked)

        rewrite = np.zeros(stacked.shape)  # all-zero rewrite clears every bit...
        stacked.values = rewrite
        apply_patterns_stacked(patterns, stacked)  # ...the defect re-asserts
        flat = stacked.raw.reshape(4, -1)
        for replica, pattern in enumerate(patterns):
            observed = (flat[replica, pattern.element_indices] >> pattern.bit_positions) & 1
            assert np.all(observed == 1)
        # Sites outside the patterns stay at the rewritten (zero) value.
        untouched = flat.copy()
        for replica, pattern in enumerate(patterns):
            np.bitwise_and.at(
                untouched[replica],
                pattern.element_indices,
                ~(np.int64(1) << pattern.bit_positions),
            )
        assert np.all(untouched == 0)

    def test_stacked_apply_validates_replica_count(self, wide_qtensor):
        stacked = wide_qtensor.replicate(2)
        with pytest.raises(ValueError, match="patterns"):
            apply_patterns_stacked([None], stacked)

    def test_stacked_apply_validates_element_range(self, wide_qtensor):
        stacked = wide_qtensor.replicate(2)
        bad = FaultPattern(
            "weights", np.array([wide_qtensor.size]), np.array([0]), stuck_value=1
        )
        with pytest.raises(ValueError, match="only"):
            apply_patterns_stacked([bad, None], stacked)

    def test_mixed_fault_kinds_apply_per_replica(self, wide_qtensor):
        # One stacked call may carry transient and both stuck-at kinds; each
        # replica must receive exactly its own pattern's semantics.
        stacked = wide_qtensor.replicate(3)
        patterns = [
            _all_sites_pattern(wide_qtensor),
            _all_sites_pattern(wide_qtensor, stuck_value=0),
            _all_sites_pattern(wide_qtensor, stuck_value=1),
        ]
        apply_patterns_stacked(patterns, stacked)
        raw = stacked.raw
        word_mask = wide_qtensor.qformat.word_mask
        assert np.array_equal(raw[0], wide_qtensor.raw ^ word_mask)
        assert np.all(raw[1] == 0)
        assert np.all(raw[2] == word_mask)


class TestCampaign:
    def test_campaign_aggregates_success(self):
        campaign = Campaign("test", repetitions=20, seed=3)

        def trial(rng):
            return TrialOutcome(success=bool(rng.random() < 0.5), metric=1.0)

        result = campaign.run(trial)
        assert result.repetitions == 20
        assert 0.0 <= result.success_rate <= 1.0
        low, high = result.success_confidence()
        assert 0.0 <= low <= result.success_rate <= high <= 1.0

    def test_campaign_is_reproducible(self):
        def trial(rng):
            return TrialOutcome(metric=float(rng.random()))

        first = Campaign("a", 5, seed=9).run(trial)
        second = Campaign("a", 5, seed=9).run(trial)
        assert first.metrics.tolist() == second.metrics.tolist()

    def test_campaign_rejects_bad_trial(self):
        campaign = Campaign("bad", 2)
        with pytest.raises(TypeError):
            campaign.run(lambda rng: 42)

    def test_campaign_validation(self):
        with pytest.raises(ValueError):
            Campaign("x", 0)

    def test_result_without_metrics_raises(self):
        campaign = Campaign("x", 3)
        result = campaign.run(lambda rng: TrialOutcome(success=True))
        with pytest.raises(ValueError):
            _ = result.mean_metric
        assert result.success_rate == 1.0

    def test_extras_mean(self):
        campaign = Campaign("x", 4)
        result = campaign.run(lambda rng: TrialOutcome(metric=1.0, extras={"steps": 2.0}))
        assert result.extras_mean("steps") == 2.0
        with pytest.raises(KeyError):
            result.extras_mean("missing")

    def test_default_repetitions_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_REPS", "7")
        assert default_repetitions(100) == 7
        monkeypatch.setenv("REPRO_CAMPAIGN_REPS", "bogus")
        with pytest.raises(ValueError):
            default_repetitions(100)
        monkeypatch.delenv("REPRO_CAMPAIGN_REPS")
        assert default_repetitions(100) == 100
