"""Tests for the content-addressed artifact store (``repro.store``).

Covers key canonicalization (param order, numpy scalar types and engine
knobs wash out; seed / repetitions / scale / code fingerprint do not),
provenance-preserving put/get round-trips, query/evict, index rebuild from
the object files, and the ``cache=`` policy threading through ``api.run``.
"""

import json
import os
import shutil

import numpy as np
import pytest

import sweep_testlib
from repro import api
from repro.api import ExecutionConfig
from repro.core.runner import executed_trial_count
from repro.store import (
    ArtifactStore,
    artifact_key,
    code_fingerprint,
    default_store_root,
    resolve_store,
    validate_cache_policy,
)

SPEC = sweep_testlib.SPEC_NAME


def _run(store=None, cache="off", seed=0, reps=4, **params):
    return api.run(
        SPEC,
        params=dict(params),
        execution=ExecutionConfig(seed=seed, repetitions=reps),
        cache=cache,
        store=store,
    )


def _prepared(store, digest):
    """The object path for ``digest`` with its shard directory created."""
    path = store.object_path(digest)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


class TestArtifactKey:
    def test_param_order_and_numpy_types_wash_out(self):
        execution = ExecutionConfig(seed=1, repetitions=4)
        base = artifact_key(SPEC, {"p": 0.5, "label": "a"}, execution)
        assert artifact_key(SPEC, {"label": "a", "p": 0.5}, execution) == base
        assert (
            artifact_key(SPEC, {"p": np.float64(0.5), "label": "a"}, execution) == base
        )

    def test_engine_and_checkpoint_knobs_excluded(self):
        # Engines are bit-identical, so a serial result is a valid hit for a
        # batched/parallel run of the same campaign.
        base = artifact_key(SPEC, {"p": 0.5}, ExecutionConfig(seed=1, repetitions=4))
        assert (
            artifact_key(
                SPEC,
                {"p": 0.5},
                ExecutionConfig(
                    seed=1, repetitions=4, workers=3, batch_size=8,
                    checkpoint_dir="runs", resume=True,
                ),
            )
            == base
        )

    @pytest.mark.parametrize(
        "changed",
        [
            {"seed": 2},
            {"repetitions": 5},
            {"scale": "medium"},
        ],
    )
    def test_numeric_identity_fields_change_the_key(self, changed):
        base = artifact_key(SPEC, {"p": 0.5}, ExecutionConfig(seed=1, repetitions=4))
        other = ExecutionConfig(**{"seed": 1, "repetitions": 4, **changed})
        assert artifact_key(SPEC, {"p": 0.5}, other) != base

    def test_params_and_spec_change_the_key(self):
        execution = ExecutionConfig(seed=1, repetitions=4)
        base = artifact_key(SPEC, {"p": 0.5}, execution)
        assert artifact_key(SPEC, {"p": 0.6}, execution) != base
        assert artifact_key("fig5.inference", {"p": 0.5}, execution) != base

    def test_code_fingerprint_changes_the_key(self):
        execution = ExecutionConfig(seed=1, repetitions=4)
        base = artifact_key(SPEC, {"p": 0.5}, execution)
        other = artifact_key(SPEC, {"p": 0.5}, execution, fingerprint="deadbeef")
        assert base == artifact_key(SPEC, {"p": 0.5}, execution, code_fingerprint())
        assert other != base

    def test_reps_env_included_when_repetitions_deferred(self, monkeypatch):
        execution = ExecutionConfig(seed=1)  # repetitions=None -> preset/env
        monkeypatch.delenv("REPRO_CAMPAIGN_REPS", raising=False)
        base = artifact_key(SPEC, {"p": 0.5}, execution)
        monkeypatch.setenv("REPRO_CAMPAIGN_REPS", "17")
        assert artifact_key(SPEC, {"p": 0.5}, execution) != base
        # ...but an explicit repetition count ignores the env entirely.
        pinned = ExecutionConfig(seed=1, repetitions=4)
        monkeypatch.setenv("REPRO_CAMPAIGN_REPS", "99")
        key_a = artifact_key(SPEC, {"p": 0.5}, pinned)
        monkeypatch.delenv("REPRO_CAMPAIGN_REPS")
        assert artifact_key(SPEC, {"p": 0.5}, pinned) == key_a


class TestArtifactStore:
    def test_put_get_round_trip_preserves_provenance(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        artifact = _run(p=0.5, label="x")
        entry = store.put(artifact)
        loaded = store.get(entry.digest)
        assert loaded is not None
        assert loaded.to_json_dict() == artifact.to_json_dict()
        assert store.contains(entry.digest)
        assert len(store) == 1

    def test_get_miss_and_corrupt_object(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        artifact = _run(p=0.5)
        entry = store.put(artifact)
        store.object_path(entry.digest).write_text("{not json")
        assert store.get(entry.digest) is None  # corrupt = miss, never error

    def test_query_by_spec_and_params(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(_run(p=0.25, label="x"))
        store.put(_run(p=0.75, label="x"))
        store.put(_run(p=0.75, label="y"))
        assert len(store.query(SPEC)) == 3
        assert len(store.query(SPEC, p=0.75)) == 2
        assert len(store.query(SPEC, p=0.75, label="y")) == 1
        assert store.query("fig5.inference") == []
        # numpy-typed query values canonicalize like stored params do
        assert len(store.query(SPEC, p=np.float64(0.25))) == 1

    def test_evict(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        e1 = store.put(_run(p=0.25))
        store.put(_run(p=0.75))
        assert store.evict(e1.digest) == 1
        assert not store.contains(e1.digest)
        assert len(store) == 1
        assert store.evict(spec=SPEC) == 1
        assert len(store) == 0
        store.put(_run(p=0.3))
        assert store.evict() == 1  # clear-all
        assert len(store) == 0

    def test_index_rebuilds_from_objects(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(_run(p=0.5, label="x"))
        store.index_path.unlink()
        rebuilt = ArtifactStore(tmp_path / "store")
        assert [e.digest for e in rebuilt.entries()] == [entry.digest]
        assert rebuilt.query(SPEC, label="x")[0].digest == entry.digest
        # A corrupt index is also recovered from, not fatal.
        store.index_path.write_text("garbage")
        assert len(ArtifactStore(tmp_path / "store")) == 1

    def test_object_envelope_records_digest_and_created_at(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        artifact = _run(p=0.5, label="x")
        entry = store.put(artifact)
        data = json.loads(store.object_path(entry.digest).read_text())
        assert data["store"]["digest"] == entry.digest
        assert data["store"]["created_at"] == entry.created_at
        # The envelope is store metadata only — artifact loading ignores it.
        assert store.get(entry.digest).to_json_dict() == artifact.to_json_dict()

    def test_rebuild_preserves_created_at_from_envelope(self, tmp_path):
        # Entry ordering must survive a rebuild even when file mtimes lie
        # (e.g. objects rsynced onto a new machine).
        store = ArtifactStore(tmp_path / "store")
        first = store.put(_run(p=0.1))
        second = store.put(_run(p=0.9))
        bogus = (12345.0, 12345.0)
        os.utime(store.object_path(first.digest), bogus)
        os.utime(store.object_path(second.digest), bogus)
        rebuilt = store._rebuild_index()
        assert rebuilt[first.digest]["created_at"] == first.created_at
        assert rebuilt[second.digest]["created_at"] == second.created_at

    def test_rebuild_skips_objects_that_do_not_verify(self, tmp_path):
        # A copied/renamed object file must not be indexed under its new
        # name: path.stem is a claim, not a content hash of the file.
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(_run(p=0.5, label="x"))
        impostor = "ff" * 32
        shutil.copy(store.object_path(entry.digest), _prepared(store, impostor))
        with pytest.warns(RuntimeWarning, match="does not verify"):
            rebuilt = store._rebuild_index()
        assert set(rebuilt) == {entry.digest}

    def test_rebuild_verifies_pre_envelope_objects_by_recomputing(self, tmp_path):
        # Objects written before the envelope existed carry no recorded
        # digest; the rebuild recomputes their key instead of trusting the
        # filename blindly.
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(_run(p=0.5, label="x"))
        data = json.loads(store.object_path(entry.digest).read_text())
        del data["store"]
        store.object_path(entry.digest).write_text(json.dumps(data))
        legacy_under_wrong_name = _prepared(store, "ee" * 32)
        legacy_under_wrong_name.write_text(json.dumps(data))
        with pytest.warns(RuntimeWarning, match="does not verify"):
            rebuilt = store._rebuild_index()
        assert set(rebuilt) == {entry.digest}

    def test_resolve_store_and_default_root(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(tmp_path / "x").root == tmp_path / "x"
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
        assert default_store_root() == tmp_path / "env-store"
        assert resolve_store(None).root == tmp_path / "env-store"

    def test_validate_cache_policy(self):
        for policy in ("reuse", "refresh", "off"):
            assert validate_cache_policy(policy) == policy
        with pytest.raises(ValueError, match="cache"):
            validate_cache_policy("sometimes")


class TestRunCachePolicy:
    def test_reuse_serves_identical_artifact_with_zero_trials(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = _run(store=store, cache="reuse", p=0.4, label="z")
        before = executed_trial_count()
        warm = _run(store=store, cache="reuse", p=0.4, label="z")
        assert executed_trial_count() == before  # nothing ran
        assert warm.to_json_dict() == cold.to_json_dict()

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = _run(store=store, cache="reuse", p=0.4)
        before = executed_trial_count()
        refreshed = _run(store=store, cache="refresh", p=0.4)
        assert executed_trial_count() > before
        assert refreshed.result.to_json_dict() == cold.result.to_json_dict()
        assert len(store) == 1

    def test_off_never_touches_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        _run(cache="off", p=0.4)
        assert len(store) == 0
        with pytest.raises(TypeError, match="cache='off'"):
            _run(store=store, cache="off", p=0.4)

    def test_cached_result_bit_identical_across_engines(self, tmp_path):
        # A serial result must be a legitimate hit for a batched+parallel
        # request: same key, and the numbers would have matched anyway.
        store = ArtifactStore(tmp_path / "store")
        serial = _run(store=store, cache="reuse", p=0.6, label="eng")
        batched = api.run(
            SPEC,
            params={"p": 0.6, "label": "eng"},
            execution=ExecutionConfig(seed=0, repetitions=4, workers=2, batch_size=2),
            cache="reuse",
            store=store,
        )
        assert batched.result.to_json_dict() == serial.result.to_json_dict()
        assert len(store) == 1

    def test_stale_fingerprint_misses(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        artifact = _run(p=0.4)
        stale = artifact_key(SPEC, artifact.params, artifact.execution, "0ld")
        store.put(artifact, digest=stale)
        before = executed_trial_count()
        _run(store=store, cache="reuse", p=0.4)
        assert executed_trial_count() > before  # stale entry not served
        assert len(store) == 2


class TestIndexFile:
    def test_index_is_valid_json_with_kind(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(_run(p=0.5))
        data = json.loads(store.index_path.read_text())
        assert data["kind"] == "repro-artifact-store-index"
        assert len(data["entries"]) == 1
        (meta,) = data["entries"].values()
        assert meta["spec"] == SPEC
        assert meta["params"]["p"] == 0.5
