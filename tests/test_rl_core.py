"""Tests for schedules, replay, tabular Q-learning and the training loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import make_gridworld
from repro.rl import (
    ConstantSchedule,
    DecayingEpsilonGreedy,
    ReplayBuffer,
    TabularQAgent,
    Transition,
    TrainingHooks,
    evaluate_success_rate,
    greedy_rollout,
    train_agent,
)


class TestSchedules:
    def test_constant_schedule(self):
        schedule = ConstantSchedule(0.3)
        assert schedule.epsilon == 0.3
        schedule.step()
        assert schedule.epsilon == 0.3
        assert schedule.is_steady()

    def test_constant_schedule_validation(self):
        with pytest.raises(ValueError):
            ConstantSchedule(1.5)

    def test_decay_reaches_floor(self):
        schedule = DecayingEpsilonGreedy(1.0, 0.1, 0.5)
        for _ in range(20):
            schedule.step()
        assert schedule.epsilon == pytest.approx(0.1)
        assert schedule.is_steady()

    def test_boost_caps_at_one(self):
        schedule = DecayingEpsilonGreedy(0.9, 0.05, 0.9)
        schedule.boost(0.5)
        assert schedule.epsilon == 1.0

    def test_boost_negative_rejected(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy().boost(-0.1)

    def test_restart_slows_decay(self):
        schedule = DecayingEpsilonGreedy(1.0, 0.05, 0.9)
        for _ in range(10):
            schedule.step()
        schedule.restart(decay_slowdown=2.0)
        assert schedule.epsilon == 1.0
        assert schedule.decay == pytest.approx(0.9**0.5)

    def test_restart_invalid_slowdown(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy().restart(decay_slowdown=0.5)

    def test_episodes_to_steady(self):
        schedule = DecayingEpsilonGreedy(1.0, 0.05, 0.9)
        estimate = schedule.episodes_to_steady()
        for _ in range(estimate):
            schedule.step()
        assert schedule.is_steady()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy(0.1, 0.5, 0.9)
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy(1.0, 0.1, 0.0)


@settings(max_examples=40, deadline=None)
@given(
    start=st.floats(min_value=0.2, max_value=1.0),
    floor=st.floats(min_value=0.01, max_value=0.15),
    decay=st.floats(min_value=0.5, max_value=0.999),
    steps=st.integers(min_value=0, max_value=200),
)
def test_property_epsilon_monotone_and_bounded(start, floor, decay, steps):
    schedule = DecayingEpsilonGreedy(start, floor, decay)
    previous = schedule.epsilon
    for _ in range(steps):
        current = schedule.step()
        assert floor - 1e-12 <= current <= previous + 1e-12
        previous = current


class TestReplayBuffer:
    def make_transition(self, i):
        return Transition(i, 0, float(i), i + 1, False)

    def test_push_and_len(self):
        buffer = ReplayBuffer(10)
        for i in range(5):
            buffer.push(self.make_transition(i))
        assert len(buffer) == 5

    def test_capacity_eviction(self):
        buffer = ReplayBuffer(3)
        for i in range(5):
            buffer.push(self.make_transition(i))
        assert len(buffer) == 3
        states = [t.state for t in buffer]
        assert states == [2, 3, 4]
        assert buffer.is_full()

    def test_sample_size(self, rng):
        buffer = ReplayBuffer(10, rng=rng)
        for i in range(10):
            buffer.push(self.make_transition(i))
        assert len(buffer.sample(4)) == 4

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(4).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0)

    def test_clear(self):
        buffer = ReplayBuffer(4)
        buffer.push(self.make_transition(0))
        buffer.clear()
        assert len(buffer) == 0


class TestTabularAgent:
    def test_q_update_moves_toward_target(self, rng):
        agent = TabularQAgent(4, 2, gamma=0.9, learning_rate=0.5, rng=rng)
        agent.observe(Transition(0, 1, 1.0, 1, True))
        assert agent.q_values(0)[1] > 0.0
        assert agent.q_values(0)[0] == 0.0

    def test_terminal_transition_ignores_bootstrap(self, rng):
        agent = TabularQAgent(3, 2, gamma=0.9, learning_rate=1.0, rng=rng)
        # Give the next state a large value; terminal updates must ignore it.
        agent.observe(Transition(1, 0, 1.0, 2, True))
        agent.observe(Transition(0, 0, 0.5, 1, True))
        assert agent.q_values(0)[0] == pytest.approx(0.5, abs=0.1)

    def test_quantization_limits_resolution(self, rng):
        agent = TabularQAgent(2, 2, learning_rate=1.0, value_scale=1.0, rng=rng)
        agent.observe(Transition(0, 0, 0.001, 1, True))
        # 0.001 is below the representable resolution at value_scale 1.
        assert agent.q_values(0)[0] == 0.0

    def test_greedy_action_selection(self, rng):
        agent = TabularQAgent(2, 3, schedule=ConstantSchedule(0.0), rng=rng)
        agent.observe(Transition(0, 2, 1.0, 1, True))
        assert agent.select_action(0, explore=True) == 2

    def test_exploration_uses_schedule(self, rng):
        agent = TabularQAgent(2, 3, schedule=ConstantSchedule(1.0), rng=rng)
        agent.observe(Transition(0, 2, 1.0, 1, True))
        actions = {agent.select_action(0) for _ in range(50)}
        assert len(actions) > 1

    def test_clone_with_explicit_rng_leaves_parent_rng_untouched(self, rng):
        # Campaign trials clone shared agents; with an explicit rng the clone
        # must not advance the parent's generator (execution-order purity).
        agent = TabularQAgent(4, 2, rng=np.random.default_rng(3))
        state_before = agent.rng.bit_generator.state
        copy = agent.clone(rng=np.random.default_rng(0))
        assert agent.rng.bit_generator.state == state_before
        assert np.array_equal(copy.q_table, agent.q_table)
        # Default behaviour (no rng) still draws from the parent.
        agent.clone()
        assert agent.rng.bit_generator.state != state_before

    def test_memory_buffer_is_live(self, rng):
        agent = TabularQAgent(2, 2, rng=rng)
        table = agent.memory_buffers()["qtable"]
        table.values = np.full((2, 2), 7.0)
        assert agent.q_values(0)[0] == pytest.approx(7.0 / agent.value_scale, abs=0.01)

    def test_initial_q(self, rng):
        agent = TabularQAgent(3, 2, initial_q=0.5, rng=rng)
        assert np.allclose(agent.q_table, 0.5, atol=0.01)

    def test_invalid_state_rejected(self, rng):
        agent = TabularQAgent(2, 2, rng=rng)
        with pytest.raises(ValueError):
            agent.q_values(5)

    def test_clone_is_independent(self, rng):
        agent = TabularQAgent(2, 2, rng=rng)
        agent.observe(Transition(0, 0, 1.0, 1, True))
        clone = agent.clone()
        clone.observe(Transition(0, 1, 1.0, 1, True))
        assert agent.q_values(0)[1] == 0.0

    def test_constructor_validation(self, rng):
        with pytest.raises(ValueError):
            TabularQAgent(0, 2)
        with pytest.raises(ValueError):
            TabularQAgent(2, 2, gamma=1.5)
        with pytest.raises(ValueError):
            TabularQAgent(2, 2, learning_rate=0.0)
        with pytest.raises(ValueError):
            TabularQAgent(2, 2, value_scale=-1.0)


class TestTrainingLoop:
    def test_tabular_training_learns_gridworld(self, rng):
        env = make_gridworld("middle", rng=rng)
        agent = TabularQAgent(
            env.n_states,
            env.n_actions,
            schedule=DecayingEpsilonGreedy(1.0, 0.05, 0.99),
            initial_q=0.5,
            rng=rng,
        )
        result = train_agent(agent, env, episodes=400, max_steps_per_episode=100)
        assert result.episodes == 400
        eval_env = make_gridworld("middle")
        rate = evaluate_success_rate(
            lambda s: agent.select_action(s, explore=False), eval_env, trials=10
        )
        assert rate > 0.8

    def test_hooks_are_called(self, rng):
        env = make_gridworld("low", rng=rng)
        agent = TabularQAgent(env.n_states, env.n_actions, rng=rng)
        calls = {"start": 0, "episode": 0, "step": 0, "end": 0}

        class Recorder(TrainingHooks):
            def on_training_start(self, agent, env):
                calls["start"] += 1

            def on_episode_start(self, episode, agent, env):
                calls["episode"] += 1

            def on_step(self, episode, step, agent, env, transition):
                calls["step"] += 1

            def on_training_end(self, agent, env, result):
                calls["end"] += 1

        train_agent(agent, env, episodes=3, max_steps_per_episode=5, hooks=[Recorder()])
        assert calls["start"] == 1 and calls["end"] == 1
        assert calls["episode"] == 3
        assert calls["step"] >= 3

    def test_invalid_episode_count(self, rng):
        env = make_gridworld("low", rng=rng)
        agent = TabularQAgent(env.n_states, env.n_actions, rng=rng)
        with pytest.raises(ValueError):
            train_agent(agent, env, episodes=0)

    def test_training_result_metrics(self, rng):
        env = make_gridworld("low", rng=rng)
        agent = TabularQAgent(env.n_states, env.n_actions, rng=rng)
        result = train_agent(agent, env, episodes=30, max_steps_per_episode=20)
        assert result.rewards.shape == (30,)
        assert result.moving_average_reward(10).shape == (21,)
        assert 0.0 <= result.success_rate() <= 1.0
        with pytest.raises(ValueError):
            result.moving_average_reward(0)

    def test_greedy_rollout_step_hook(self, grid_env):
        seen = []
        greedy_rollout(lambda s: 3, grid_env, max_steps=3, step_hook=lambda st, s, a: seen.append(a))
        assert seen == [3, 3, 3]
