"""Tests for the bit-addressable quantized tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import Q8_GRID, Q16_NARROW, QTensor
from repro.quant.statistics import bit_histogram, bit_level_stats, value_histogram


class TestQTensorViews:
    def test_values_round_trip(self, rng):
        values = Q8_GRID.quantize(rng.uniform(-7, 7, size=(3, 3)))
        tensor = QTensor(values, Q8_GRID)
        assert np.allclose(tensor.values, values)

    def test_set_values_reencodes(self, small_qtensor):
        new = np.zeros(small_qtensor.shape)
        small_qtensor.values = new
        assert np.all(small_qtensor.raw == 0)

    def test_shape_mismatch_rejected(self, small_qtensor):
        with pytest.raises(ValueError):
            small_qtensor.values = np.zeros((2, 2))
        with pytest.raises(ValueError):
            small_qtensor.raw = np.zeros((2, 2), dtype=np.int64)

    def test_from_raw_masks_extra_bits(self):
        tensor = QTensor.from_raw(np.array([0x1FF]), Q8_GRID)
        assert tensor.raw[0] == 0xFF

    def test_zeros_constructor(self):
        tensor = QTensor.zeros((2, 3), Q8_GRID, name="buf")
        assert tensor.size == 6
        assert np.all(tensor.values == 0)
        assert tensor.name == "buf"

    def test_copy_is_independent(self, small_qtensor):
        copy = small_qtensor.copy()
        copy.inject_bit_flips(np.array([0]), np.array([7]))
        assert copy != small_qtensor

    def test_equality(self, small_qtensor):
        assert small_qtensor == small_qtensor.copy()
        other = QTensor(small_qtensor.values, Q16_NARROW)
        assert small_qtensor != other


class TestQTensorFaults:
    def test_bit_flip_changes_value(self, small_qtensor):
        before = small_qtensor.values.flat[0]
        small_qtensor.inject_bit_flips(np.array([0]), np.array([7]))
        after = small_qtensor.values.flat[0]
        assert before != after

    def test_msb_flip_changes_sign_region(self):
        tensor = QTensor(np.array([1.0]), Q8_GRID)
        tensor.inject_bit_flips(np.array([0]), np.array([7]))
        # Flipping the sign bit of +1.0 (raw 0x10) gives raw 0x90 = -7.0.
        assert tensor.values[0] == pytest.approx(-7.0)

    def test_stuck_at_zero_on_zero_is_benign(self):
        tensor = QTensor.zeros((4,), Q8_GRID)
        tensor.inject_stuck_at(np.arange(4), np.full(4, 3), stuck_value=0)
        assert np.all(tensor.values == 0)

    def test_stuck_at_one_on_zero_corrupts(self):
        tensor = QTensor.zeros((4,), Q8_GRID)
        tensor.inject_stuck_at(np.arange(4), np.full(4, 6), stuck_value=1)
        assert np.all(tensor.values != 0)

    def test_random_flip_count_matches_ber(self, rng):
        tensor = QTensor.zeros((100, 10), Q16_NARROW)
        count = tensor.inject_random_bit_flips(0.01, rng)
        # 100*10*16 = 16000 bits -> expect ~160 flips.
        assert 100 < count < 240

    def test_sample_fault_sites_does_not_mutate(self, small_qtensor, rng):
        before = small_qtensor.raw
        small_qtensor.sample_fault_sites(0.5, rng)
        assert np.array_equal(small_qtensor.raw, before)

    def test_sign_integer_words_mask(self):
        tensor = QTensor(np.array([1.5]), Q8_GRID)  # raw 0b0001_1000
        masked = tensor.sign_integer_words()[0]
        assert masked == 0b00010000


class TestStatistics:
    def test_bit_counts_all_zero_tensor(self):
        tensor = QTensor.zeros((4, 4), Q8_GRID)
        zeros, ones = tensor.bit_counts()
        assert ones == 0
        assert zeros == 4 * 4 * 8

    def test_bit_counts_sum_invariant(self, wide_qtensor):
        zeros, ones = wide_qtensor.bit_counts()
        assert zeros + ones == wide_qtensor.size * 16

    def test_bit_level_stats(self, wide_qtensor):
        stats = bit_level_stats(wide_qtensor)
        assert 0.0 < stats.zero_fraction < 1.0
        assert stats.zero_fraction + stats.one_fraction == pytest.approx(1.0)
        assert stats.min_value <= stats.max_value

    def test_bit_histogram_length(self, small_qtensor):
        counts = bit_histogram(small_qtensor)
        assert counts.shape == (8,)
        assert counts.max() <= small_qtensor.size

    def test_value_histogram_covers_all_elements(self, small_qtensor):
        counts, edges = value_histogram(small_qtensor, bins=16)
        assert counts.sum() == small_qtensor.size
        assert len(edges) == 17

    def test_value_range(self, small_qtensor):
        lo, hi = small_qtensor.value_range()
        assert lo <= hi
        vals = small_qtensor.values
        assert lo == vals.min() and hi == vals.max()

    def test_out_of_range_mask(self):
        tensor = QTensor(np.array([0.0, 5.0, -5.0]), Q8_GRID)
        mask = tensor.out_of_range_mask(-1.0, 1.0)
        assert mask.tolist() == [False, True, True]


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-7.5, max_value=7.5, allow_nan=False), min_size=1, max_size=20
    ),
    bit=st.integers(min_value=0, max_value=7),
)
def test_property_double_flip_restores_tensor(values, bit):
    tensor = QTensor(np.array(values), Q8_GRID)
    original = tensor.raw
    index = np.array([len(values) - 1])
    tensor.inject_bit_flips(index, np.array([bit]))
    tensor.inject_bit_flips(index, np.array([bit]))
    assert np.array_equal(tensor.raw, original)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-15.0, max_value=15.0, allow_nan=False), min_size=1, max_size=20
    )
)
def test_property_values_always_in_format_range(values):
    tensor = QTensor(np.array(values), Q16_NARROW)
    decoded = tensor.values
    assert decoded.max() <= Q16_NARROW.max_value
    assert decoded.min() >= Q16_NARROW.min_value
