"""Property tests for the Wilson / sequential-interval statistics helpers.

The adaptive sweep sampler stops a campaign when
:func:`~repro.metrics.statistics.wilson_half_width` drops below its target,
so these helpers carry real precision guarantees: the tests check interval
coverage against simulated binomials, strict monotonicity of the half-width
in the trial count, the ``p = 0`` / ``p = 1`` edge cases where the normal
approximation collapses, and the growth/termination contract of
:func:`~repro.metrics.statistics.next_adaptive_repetitions`.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.statistics import (
    next_adaptive_repetitions,
    required_trials,
    wilson_confidence_interval,
    wilson_half_width,
)


class TestWilsonHalfWidth:
    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        rate=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_interval_and_stays_in_unit_range(self, trials, rate):
        successes = rate * trials
        half = wilson_half_width(successes, trials)
        low, high = wilson_confidence_interval(successes, trials)
        assert 0.0 < half < 1.0
        # The interval is the (clipped) centre +/- half-width.
        assert high - low <= 2 * half + 1e-12
        assert 0.0 <= low <= high <= 1.0

    @given(rate=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_strictly_monotonic_in_trials(self, rate):
        # More trials at the same proportion always tightens the interval —
        # the property the measure-until-precise loop terminates on.
        widths = [wilson_half_width(rate * n, n) for n in (2, 8, 32, 128, 512, 4096)]
        assert all(a > b for a, b in zip(widths, widths[1:]))

    @pytest.mark.parametrize("n", [1, 10, 1000])
    def test_edge_proportions_zero_and_one(self, n):
        # Degenerate observations still give a positive, symmetric width
        # (the normal approximation would claim zero uncertainty here).
        at_zero = wilson_half_width(0, n)
        at_one = wilson_half_width(n, n)
        assert at_zero == pytest.approx(at_one)
        assert 0.0 < at_zero < 1.0
        low, high = wilson_confidence_interval(0, n)
        assert low == 0.0 and high > 0.0
        low, high = wilson_confidence_interval(n, n)
        assert high == 1.0 and low < 1.0

    def test_worst_case_at_half(self):
        # p = 0.5 maximizes the width at any fixed n.
        n = 100
        widths = {k: wilson_half_width(k, n) for k in range(n + 1)}
        assert max(widths, key=widths.get) == n // 2

    def test_fractional_successes_accepted(self):
        # Campaign rows report mean success rates; effective counts may be
        # fractional and must interpolate smoothly.
        assert (
            wilson_half_width(4, 10)
            < wilson_half_width(4.5, 10)
            <= wilson_half_width(5, 10)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_half_width(1, 0)
        with pytest.raises(ValueError):
            wilson_half_width(-0.1, 10)
        with pytest.raises(ValueError):
            wilson_half_width(10.5, 10)

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    def test_coverage_of_simulated_binomials(self, p):
        # Frequentist coverage: the nominal-95% interval must cover the true
        # p in (at least roughly) 95% of seeded replications.
        rng = np.random.default_rng(20260728)
        n, replications = 120, 400
        covered = 0
        for _ in range(replications):
            successes = int(rng.binomial(n, p))
            low, high = wilson_confidence_interval(successes, n)
            covered += low <= p <= high
        assert covered / replications >= 0.92

    def test_required_trials_achieves_target_width(self):
        # required_trials is the planner the adaptive loop jumps with: at
        # the planned n, the Wilson width must (approximately) meet the
        # target for the planned proportion.
        for p, target in [(0.5, 0.05), (0.9, 0.02), (0.2, 0.1)]:
            n = required_trials(target, p)
            assert wilson_half_width(p * n, n) <= target * 1.05


class TestNextAdaptiveRepetitions:
    def test_none_when_target_met(self):
        assert next_adaptive_repetitions(9000, 10_000, 0.05) is None

    def test_grows_by_at_least_growth_factor(self):
        nxt = next_adaptive_repetitions(1, 2, 0.01, growth=2.0)
        assert nxt >= 4

    def test_jumps_to_requirement_when_estimate_demands_it(self):
        # p-hat = 0.5 at n=10 with a 1% target plans thousands of trials,
        # far beyond the 2x floor.
        nxt = next_adaptive_repetitions(5, 10, 0.01)
        assert nxt >= required_trials(0.01, 0.5)

    def test_respects_max_trials_budget(self):
        assert next_adaptive_repetitions(5, 10, 0.01, max_trials=64) == 64
        # At the budget, the loop must stop even though the target is unmet.
        assert next_adaptive_repetitions(32, 64, 0.01, max_trials=64) is None

    @given(
        trials=st.integers(min_value=1, max_value=1000),
        rate=st.floats(min_value=0.0, max_value=1.0),
        target=st.floats(min_value=0.005, max_value=0.5),
    )
    @settings(max_examples=150, deadline=None)
    def test_termination_invariant(self, trials, rate, target):
        # Either the loop stops, or the next round is strictly larger —
        # the pair of facts that guarantees adaptive sampling terminates.
        nxt = next_adaptive_repetitions(rate * trials, trials, target)
        if nxt is None:
            assert wilson_half_width(rate * trials, trials) <= target
        else:
            assert nxt >= math.ceil(trials * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            next_adaptive_repetitions(1, 2, 0.0)
        with pytest.raises(ValueError):
            next_adaptive_repetitions(1, 2, 1.0)
        with pytest.raises(ValueError):
            next_adaptive_repetitions(1, 2, 0.1, growth=1.0)
