"""Unit and property tests for fixed-point formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import Q8_GRID, Q16_MID, Q16_NARROW, Q16_WIDE, QFormat


class TestQFormatBasics:
    def test_total_bits(self):
        assert QFormat(1, 4, 11).total_bits == 16
        assert Q8_GRID.total_bits == 8

    def test_scale_is_lsb_value(self):
        assert QFormat(1, 4, 11).scale == 2.0**-11
        assert Q8_GRID.scale == 2.0**-4

    def test_value_range_q1_4_11(self):
        fmt = Q16_NARROW
        assert fmt.max_value == pytest.approx(16.0 - 2.0**-11)
        assert fmt.min_value == pytest.approx(-16.0)

    def test_value_range_q8(self):
        assert Q8_GRID.max_value == pytest.approx(8.0 - 2.0**-4)
        assert Q8_GRID.min_value == pytest.approx(-8.0)

    def test_paper_formats_widths(self):
        for fmt in (Q16_NARROW, Q16_MID, Q16_WIDE):
            assert fmt.total_bits == 16
        assert Q16_WIDE.max_value > Q16_MID.max_value > Q16_NARROW.max_value

    def test_sign_bit_position(self):
        assert Q16_NARROW.sign_bit_position == 15
        assert QFormat(0, 4, 4).sign_bit_position == -1

    def test_sign_and_integer_mask(self):
        fmt = QFormat(1, 3, 4)
        assert fmt.sign_and_integer_mask == 0b11110000
        assert fmt.word_mask == 0xFF

    def test_bit_position_ranges(self):
        fmt = QFormat(1, 4, 11)
        assert list(fmt.fraction_bit_positions) == list(range(11))
        assert list(fmt.integer_bit_positions) == list(range(11, 15))

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            QFormat(2, 4, 4)
        with pytest.raises(ValueError):
            QFormat(1, -1, 4)
        with pytest.raises(ValueError):
            QFormat(1, 0, 0)
        with pytest.raises(ValueError):
            QFormat(1, 60, 10)

    def test_parse_round_trip(self):
        fmt = QFormat.parse("Q(1,4,11)")
        assert fmt == Q16_NARROW
        assert QFormat.parse("1, 7, 8") == Q16_MID
        assert str(fmt) == "Q(1,4,11)"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            QFormat.parse("Q(1,4)")


class TestEncodeDecode:
    def test_zero_round_trips(self):
        raw = Q8_GRID.encode(np.array([0.0]))
        assert raw[0] == 0
        assert Q8_GRID.decode(raw)[0] == 0.0

    def test_exact_values_round_trip(self):
        values = np.array([1.0, -1.0, 0.5, -0.25, 7.9375, -8.0])
        assert np.allclose(Q8_GRID.decode(Q8_GRID.encode(values)), values)

    def test_saturation_at_max(self):
        out = Q8_GRID.quantize(np.array([100.0, -100.0]))
        assert out[0] == pytest.approx(Q8_GRID.max_value)
        assert out[1] == pytest.approx(Q8_GRID.min_value)

    def test_negative_values_use_twos_complement(self):
        raw = Q8_GRID.encode(np.array([-1.0]))
        # -1.0 = -16 LSBs -> two's complement 0xF0
        assert raw[0] == 0xF0

    def test_quantization_error_bounded_by_half_lsb(self):
        values = np.linspace(-7.9, 7.9, 201)
        quantized = Q8_GRID.quantize(values)
        assert np.max(np.abs(quantized - values)) <= Q8_GRID.scale / 2 + 1e-12

    def test_representable_mask(self):
        mask = Q8_GRID.representable(np.array([0.0, 7.0, 9.0, -9.0]))
        assert mask.tolist() == [True, True, False, False]


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=-15.9, max_value=15.9, allow_nan=False),
)
def test_property_q16_round_trip_error(value):
    """Quantization error never exceeds half an LSB inside the range."""
    fmt = Q16_NARROW
    quantized = fmt.quantize(np.array([value]))[0]
    assert abs(quantized - value) <= fmt.scale / 2 + 1e-12


@settings(max_examples=60, deadline=None)
@given(
    sign=st.integers(min_value=0, max_value=1),
    integer=st.integers(min_value=1, max_value=10),
    fraction=st.integers(min_value=1, max_value=12),
)
def test_property_format_bit_accounting(sign, integer, fraction):
    """Total bits and masks are internally consistent for any format."""
    fmt = QFormat(sign, integer, fraction)
    assert fmt.total_bits == sign + integer + fraction
    assert fmt.word_mask == (1 << fmt.total_bits) - 1
    assert fmt.sign_and_integer_mask | ((1 << fraction) - 1) == fmt.word_mask


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=-7.5, max_value=7.5, allow_nan=False), min_size=1, max_size=30))
def test_property_quantize_idempotent(values):
    """Quantizing an already-quantized array changes nothing."""
    arr = np.array(values)
    once = Q8_GRID.quantize(arr)
    twice = Q8_GRID.quantize(once)
    assert np.array_equal(once, twice)
