"""Differential tests for the sweep orchestrator (``repro.sweep``).

The acceptance-critical guarantees:

(a) a sweep over N points equals N independent ``api.run`` calls
    bit-identically — for any cache state, point order and engine
    (serial / parallel / batched);
(b) a warm-cache sweep re-run executes zero trials;
(c) adaptive mode's final estimates agree with fixed-repetition runs at the
    same seeds, and its reported CI half-width meets ``target_ci`` on every
    point.

Plus: point enumeration (grid / zip / random), axis validation, sweep
checkpoint/resume, artifact JSON round-trips and the flattened table views.
Most tests run against the synthetic Bernoulli spec (see
``sweep_testlib``); one integration test runs a real fig5 sweep.
"""

import numpy as np
import pytest

import sweep_testlib
from repro import api
from repro.api import ExecutionConfig
from repro.core.runner import executed_trial_count
from repro.metrics.statistics import wilson_half_width
from repro.store import ArtifactStore
from repro.sweep import (
    AdaptiveConfig,
    SweepArtifact,
    SweepCheckpoint,
    SweepRunner,
    SweepSpec,
    derive_point_seed,
)

SPEC = sweep_testlib.SPEC_NAME


def _sweep_spec(ps=(0.25, 0.75), labels=("x",)):
    return SweepSpec.grid(SPEC, p=list(ps), label=list(labels))


class TestSweepSpec:
    def test_grid_points_in_product_order(self):
        spec = SweepSpec.grid(SPEC, p=[0.1, 0.9], label=["a", "b"])
        points = spec.points()
        assert [(pt["p"], pt["label"]) for pt in points] == [
            (0.1, "a"), (0.1, "b"), (0.9, "a"), (0.9, "b"),
        ]

    def test_zip_points_lockstep(self):
        spec = SweepSpec.zipped(SPEC, p=[0.1, 0.9], label=["a", "b"])
        assert [(pt["p"], pt["label"]) for pt in spec.points()] == [
            (0.1, "a"), (0.9, "b"),
        ]
        with pytest.raises(ValueError, match="equal lengths"):
            SweepSpec.zipped(SPEC, p=[0.1, 0.9], label=["a"])

    def test_random_points_deterministic_in_sample_seed(self):
        spec = SweepSpec.random(SPEC, samples=6, sample_seed=3, p=[0.1, 0.5, 0.9])
        again = SweepSpec.random(SPEC, samples=6, sample_seed=3, p=[0.1, 0.5, 0.9])
        assert spec.points() == again.points()
        other = SweepSpec.random(SPEC, samples=6, sample_seed=4, p=[0.1, 0.5, 0.9])
        assert spec.points() != other.points()
        assert all(pt["p"] in (0.1, 0.5, 0.9) for pt in spec.points())

    def test_axis_validation(self):
        with pytest.raises(KeyError, match="no parameter"):
            SweepSpec.grid(SPEC, bogus=[1])
        with pytest.raises(ValueError, match="no values"):
            SweepSpec.grid(SPEC, p=[])
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec.grid(SPEC)
        with pytest.raises(ValueError, match="both an axis and a base param"):
            SweepSpec.grid(SPEC, {"p": 0.5}, p=[0.1])
        with pytest.raises(ValueError, match="samples"):
            SweepSpec.random(SPEC, samples=0, p=[0.1])
        with pytest.raises(ValueError, match="must be one of"):
            SweepSpec.grid("fig5.inference", approach=["tabular", "bogus"])

    def test_values_validated_through_param_types(self):
        spec = SweepSpec.grid(SPEC, {"label": "L"}, p=["0.25", "0.75"])
        assert [pt["p"] for pt in spec.points()] == [0.25, 0.75]
        bools = SweepSpec.grid("fig5.inference", fast=["true", "false"])
        assert [pt["fast"] for pt in bools.points()] == [True, False]

    def test_json_round_trip(self):
        spec = SweepSpec.random(SPEC, samples=3, sample_seed=2,
                                base_params={"label": "b"}, p=[0.1, 0.9])
        again = SweepSpec.from_json_dict(spec.to_json_dict())
        assert again == spec
        assert again.points() == spec.points()


class TestPointSeeds:
    def test_pure_function_of_identity_not_position(self):
        spec = _sweep_spec(ps=(0.25, 0.75))
        flipped = _sweep_spec(ps=(0.75, 0.25))
        seeds = {pt["p"]: derive_point_seed(7, SPEC, pt) for pt in spec.points()}
        seeds_flipped = {pt["p"]: derive_point_seed(7, SPEC, pt) for pt in flipped.points()}
        assert seeds == seeds_flipped
        assert len(set(seeds.values())) == 2

    def test_base_seed_and_params_separate_streams(self):
        point = _sweep_spec().points()[0]
        assert derive_point_seed(0, SPEC, point) != derive_point_seed(1, SPEC, point)
        assert derive_point_seed(0, SPEC, point) != derive_point_seed(0, "other", point)


def _point_map(artifact):
    return {pt.params["p"]: pt for pt in artifact.points}


class TestSweepDifferential:
    """Acceptance (a): sweep == independent api.run, any engine/order/cache."""

    @pytest.mark.parametrize(
        "engine",
        [
            {},                                  # serial
            {"workers": 2},                      # parallel
            {"batch_size": 3},                   # batched
            {"workers": 2, "batch_size": 2},     # batched x parallel
        ],
    )
    def test_sweep_equals_independent_runs(self, engine, tmp_path):
        execution = ExecutionConfig(seed=11, repetitions=6, **engine)
        artifact = api.sweep(
            _sweep_spec(), execution=execution, store=tmp_path / "store"
        )
        assert len(artifact.points) == 2
        for point in artifact.points:
            solo = api.run(
                SPEC,
                dict(point.params),
                execution=ExecutionConfig(seed=point.seed, repetitions=6),
            )
            assert solo.result.to_json_dict() == point.artifact.result.to_json_dict()

    def test_point_order_never_changes_results(self, tmp_path):
        execution = ExecutionConfig(seed=11, repetitions=6)
        forward = api.sweep(_sweep_spec(ps=(0.25, 0.75)), execution=execution,
                            cache="off")
        reverse = api.sweep(_sweep_spec(ps=(0.75, 0.25)), execution=execution,
                            cache="off")
        fwd, rev = _point_map(forward), _point_map(reverse)
        for p in (0.25, 0.75):
            assert fwd[p].seed == rev[p].seed
            assert (
                fwd[p].artifact.result.to_json_dict()
                == rev[p].artifact.result.to_json_dict()
            )

    def test_cache_state_never_changes_results(self, tmp_path):
        execution = ExecutionConfig(seed=11, repetitions=6)
        store = tmp_path / "store"
        # Pre-warm only ONE point, then sweep over both: one point served
        # from cache, one computed fresh — identical to the cache-off sweep.
        api.sweep(_sweep_spec(ps=(0.25,)), execution=execution, store=store)
        mixed = api.sweep(_sweep_spec(), execution=execution, store=store)
        cold = api.sweep(_sweep_spec(), execution=execution, cache="off")
        assert [pt.cache_hit for pt in mixed.points] == [True, False]
        assert mixed.table().rows == cold.table().rows

    def test_engines_share_cache_entries(self, tmp_path):
        store = tmp_path / "store"
        execution = ExecutionConfig(seed=11, repetitions=6)
        serial = api.sweep(_sweep_spec(), execution=execution, store=store)
        batched = api.sweep(
            _sweep_spec(),
            execution=execution.replace(batch_size=3, workers=2),
            store=store,
        )
        assert batched.cache_hits == 2
        assert batched.executed_trials == 0
        assert batched.table().rows == serial.table().rows


class TestWarmCache:
    """Acceptance (b): warm-cache sweep re-runs execute zero trials."""

    def test_second_run_is_all_hits_and_zero_trials(self, tmp_path):
        execution = ExecutionConfig(seed=3, repetitions=5)
        store = tmp_path / "store"
        cold = api.sweep(_sweep_spec(), execution=execution, store=store)
        assert cold.cache_hits == 0 and cold.executed_trials == 2 * 5
        before = executed_trial_count()
        warm = api.sweep(_sweep_spec(), execution=execution, store=store)
        assert executed_trial_count() - before == 0
        assert warm.cache_hits == len(warm.points) == 2
        assert warm.executed_trials == 0
        assert warm.table().rows == cold.table().rows

    def test_corrupt_store_object_recomputes_and_reports_miss(self, tmp_path):
        # Regression: a pre-flight contains() check used to report
        # cache_hit=True for a point whose object file was unreadable and
        # therefore actually re-executed.
        execution = ExecutionConfig(seed=3, repetitions=5)
        store = ArtifactStore(tmp_path / "store")
        cold = api.sweep(_sweep_spec(), execution=execution, store=store)
        store.object_path(cold.points[0].digest).write_text("{corrupt")
        before = executed_trial_count()
        warm = api.sweep(_sweep_spec(), execution=execution, store=store)
        assert [pt.cache_hit for pt in warm.points] == [False, True]
        assert warm.points[0].executed_trials == 5
        assert executed_trial_count() - before == 5
        assert warm.table().rows == cold.table().rows

    def test_refresh_recomputes_identically(self, tmp_path):
        execution = ExecutionConfig(seed=3, repetitions=5)
        store = tmp_path / "store"
        cold = api.sweep(_sweep_spec(), execution=execution, store=store)
        refreshed = api.sweep(
            _sweep_spec(), execution=execution, store=store, cache="refresh"
        )
        assert refreshed.cache_hits == 0
        assert refreshed.executed_trials == 2 * 5
        assert refreshed.table().rows == cold.table().rows


class TestAdaptive:
    """Acceptance (c): adaptive == fixed repetitions, CI target met."""

    def test_final_estimates_match_fixed_runs_and_meet_target(self, tmp_path):
        target = 0.2
        artifact = api.sweep(
            SweepSpec.grid(SPEC, p=[0.02, 0.5]),
            execution=ExecutionConfig(seed=9),
            repetitions="auto",
            target_ci=target,
            initial_repetitions=4,
            store=tmp_path / "store",
        )
        assert artifact.target_ci == target
        for point in artifact.points:
            assert point.ci_half_width is not None
            assert point.ci_half_width <= target
            final_reps = point.artifact.execution.repetitions
            solo = api.run(
                SPEC,
                dict(point.params),
                execution=ExecutionConfig(seed=point.seed, repetitions=final_reps),
            )
            assert solo.result.to_json_dict() == point.artifact.result.to_json_dict()
            (row,) = point.artifact.result.rows
            successes = row["success_rate"] * final_reps
            assert wilson_half_width(successes, final_reps) == pytest.approx(
                point.ci_half_width
            )

    def test_easy_points_stop_earlier_than_hard_points(self, tmp_path):
        # p near 0 needs far fewer trials for the same CI width than p=0.5.
        artifact = api.sweep(
            SweepSpec.grid(SPEC, p=[0.02, 0.5]),
            execution=ExecutionConfig(seed=9),
            repetitions="auto",
            target_ci=0.2,
            initial_repetitions=4,
            store=tmp_path / "adaptive",
        )
        by_p = _point_map(artifact)
        easy = by_p[0.02].artifact.execution.repetitions
        hard = by_p[0.5].artifact.execution.repetitions
        assert easy < hard

    def test_budget_cap_stops_with_honest_half_width(self, tmp_path):
        artifact = api.sweep(
            SweepSpec.grid(SPEC, p=[0.5]),
            execution=ExecutionConfig(seed=9),
            repetitions="auto",
            target_ci=0.01,          # needs thousands of trials...
            initial_repetitions=4,
            max_repetitions=16,      # ...but the budget says 16
            store=tmp_path / "store",
        )
        (point,) = artifact.points
        assert point.artifact.execution.repetitions == 16
        assert point.ci_half_width > 0.01  # reported, not hidden

    def test_warm_adaptive_rerun_executes_zero_trials(self, tmp_path):
        kwargs = dict(
            execution=ExecutionConfig(seed=9),
            repetitions="auto",
            target_ci=0.2,
            initial_repetitions=4,
            store=tmp_path / "store",
        )
        cold = api.sweep(SweepSpec.grid(SPEC, p=[0.02, 0.5]), **kwargs)
        before = executed_trial_count()
        warm = api.sweep(SweepSpec.grid(SPEC, p=[0.02, 0.5]), **kwargs)
        assert executed_trial_count() - before == 0
        assert warm.table().rows == cold.table().rows
        assert [pt.adaptive_rounds for pt in warm.points] == [
            pt.adaptive_rounds for pt in cold.points
        ]

    def test_adaptive_conflicts_with_pinned_repetitions(self):
        with pytest.raises(ValueError, match="adaptive"):
            SweepRunner(cache="off").run(
                _sweep_spec(),
                ExecutionConfig(repetitions=5),
                adaptive=AdaptiveConfig(target_ci=0.1),
            )

    def test_adaptive_needs_a_headline_metric(self, tmp_path):
        # fig3 returns series results with no success_rate/repetitions rows.
        with pytest.raises(ValueError, match="headline"):
            api.sweep(
                SweepSpec.grid("fig3.return_curves", fast=[True]),
                execution=ExecutionConfig(seed=1),
                repetitions="auto",
                target_ci=0.2,
                cache="off",
            )

    def test_adaptive_config_validation(self):
        with pytest.raises(ValueError, match="target_ci"):
            AdaptiveConfig(target_ci=0.0)
        with pytest.raises(ValueError, match="initial_repetitions"):
            AdaptiveConfig(target_ci=0.1, initial_repetitions=0)
        with pytest.raises(ValueError, match="growth"):
            AdaptiveConfig(target_ci=0.1, growth=1.0)
        with pytest.raises(ValueError, match="max_repetitions"):
            AdaptiveConfig(target_ci=0.1, initial_repetitions=8, max_repetitions=4)


class TestCheckpointResume:
    def test_resume_skips_recorded_points(self, tmp_path):
        execution = ExecutionConfig(seed=4, repetitions=5)
        ckpt = tmp_path / "sweep.jsonl"
        full = api.sweep(_sweep_spec(), execution=execution, cache="off",
                         checkpoint=str(ckpt))
        # Drop the last point's line, as if the process died mid-sweep.
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:-1]) + "\n")
        before = executed_trial_count()
        resumed = api.sweep(_sweep_spec(), execution=execution, cache="off",
                            checkpoint=str(ckpt), resume=True)
        assert executed_trial_count() - before == 5  # only the missing point
        assert resumed.table().rows == full.table().rows

    def test_truncated_trailing_line_is_ignored(self, tmp_path):
        execution = ExecutionConfig(seed=4, repetitions=5)
        ckpt = tmp_path / "sweep.jsonl"
        api.sweep(_sweep_spec(), execution=execution, cache="off",
                  checkpoint=str(ckpt))
        with open(ckpt, "a") as handle:
            handle.write('{"index": 1, "point": {"ind')  # killed mid-write
        resumed = api.sweep(_sweep_spec(), execution=execution, cache="off",
                            checkpoint=str(ckpt), resume=True)
        assert len(resumed.points) == 2

    def test_mismatched_sweep_rejected(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        api.sweep(_sweep_spec(), execution=ExecutionConfig(seed=4, repetitions=5),
                  cache="off", checkpoint=str(ckpt))
        with pytest.raises(ValueError, match="different sweep"):
            api.sweep(_sweep_spec(), execution=ExecutionConfig(seed=5, repetitions=5),
                      cache="off", checkpoint=str(ckpt), resume=True)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            api.sweep(_sweep_spec(), execution=ExecutionConfig(repetitions=2),
                      cache="off", resume=True)

    def test_checkpoint_accepts_pathlib_path(self, tmp_path):
        # Regression: only str used to be coerced to SweepCheckpoint, so the
        # natural Path argument crashed with AttributeError.
        ckpt = tmp_path / "sweep.jsonl"
        artifact = api.sweep(
            _sweep_spec(), execution=ExecutionConfig(seed=4, repetitions=3),
            cache="off", checkpoint=ckpt,
        )
        assert ckpt.exists()
        resumed = api.sweep(
            _sweep_spec(), execution=ExecutionConfig(seed=4, repetitions=3),
            cache="off", checkpoint=ckpt, resume=True,
        )
        assert resumed.table().rows == artifact.table().rows


class TestSweepArtifact:
    def test_tables_and_json_round_trip(self, tmp_path):
        artifact = api.sweep(
            _sweep_spec(), execution=ExecutionConfig(seed=2, repetitions=4),
            store=tmp_path / "store",
        )
        table = artifact.table()
        assert len(table) == 2
        assert table.columns[0] == "point"
        assert set(table.column("p")) == {0.25, 0.75}
        summary = artifact.summary_table()
        assert summary.column("cache_hit") == [False, False]
        path = tmp_path / "sweep.json"
        artifact.to_json(path)
        again = SweepArtifact.from_json(path)
        assert again.to_json_dict() == artifact.to_json_dict()
        assert again.points[0].artifact.result.rows == artifact.points[0].artifact.result.rows

    def test_progress_callback(self, tmp_path):
        calls = []
        api.sweep(
            _sweep_spec(), execution=ExecutionConfig(seed=2, repetitions=4),
            cache="off", progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]


class TestApiSweepSignature:
    def test_axes_dict_form(self, tmp_path):
        artifact = api.sweep(
            SPEC, {"p": [0.25, 0.75]}, params={"label": "k"},
            execution=ExecutionConfig(seed=1, repetitions=3), cache="off",
        )
        assert [pt.params["label"] for pt in artifact.points] == ["k", "k"]

    def test_sweepspec_conflicts_with_axes(self):
        with pytest.raises(TypeError, match="not both"):
            api.sweep(_sweep_spec(), {"p": [0.1]})

    def test_missing_axes_rejected(self):
        with pytest.raises(TypeError, match="axes"):
            api.sweep(SPEC)

    def test_int_repetitions_pin_every_point(self, tmp_path):
        artifact = api.sweep(
            SPEC, {"p": [0.25]}, repetitions=3, cache="off",
            execution=ExecutionConfig(seed=1),
        )
        (point,) = artifact.points
        assert point.artifact.execution.repetitions == 3


class TestRealExperimentIntegration:
    def test_fig5_sweep_differential_and_cache(self, tmp_path):
        execution = ExecutionConfig(seed=5, repetitions=2)
        sweep_spec = SweepSpec.grid(
            "fig5.inference", {"fast": True}, episodes_per_trial=[1, 2]
        )
        store = tmp_path / "store"
        cold = api.sweep(sweep_spec, execution=execution, store=store)
        before = executed_trial_count()
        warm = api.sweep(sweep_spec, execution=execution, store=store)
        assert executed_trial_count() - before == 0
        assert warm.cache_hits == 2
        assert warm.table().rows == cold.table().rows
        point = cold.points[0]
        solo = api.run(
            "fig5.inference",
            dict(point.params),
            execution=ExecutionConfig(seed=point.seed, repetitions=2),
        )
        assert solo.result.to_json_dict() == point.artifact.result.to_json_dict()
