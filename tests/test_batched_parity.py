"""Differential tests: the batched engine must reproduce the scalar paths.

The batched inference-campaign engine promises *bit-identical* outcomes: for
any batch size B, evaluating B fault-injected replicas through the stacked
vectorized path must equal running the scalar path B times with the same
per-trial RNGs.  Every layer of the stack is verified differentially here —
stacked network forwards, stacked quantize–inject–dequantize, batched greedy
rollouts, and the fig5 trial implementations end to end — including B=1 and
ragged final batches.
"""

import numpy as np
import pytest

from repro.core import (
    BatchedEvaluator,
    BatchedRunner,
    Campaign,
    SerialRunner,
    StuckAtFault,
    TransientBitFlip,
    apply_patterns_stacked,
)
from repro.envs import EnvPool, make_gridworld
from repro.experiments.config import GridNNConfig, GridTabularConfig
from repro.experiments.common import train_grid_nn, train_tabular
from repro.experiments.fig5_inference import (
    INFERENCE_FAULT_MODES,
    _NNInferenceTrial,
    _TabularInferenceTrial,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.nn.buffers import BatchedQuantizedExecutor, QuantizedExecutor
from repro.policies import build_grid_q_network
from repro.quant import Q8_GRID, Q16_NARROW, QTensor

ALL_MODELS = [
    TransientBitFlip(0.05),
    StuckAtFault(0.05, stuck_value=0),
    StuckAtFault(0.05, stuck_value=1),
]


@pytest.fixture(scope="module")
def nn_agent_env():
    config = GridNNConfig.fast()
    agent, env, _ = train_grid_nn(config, np.random.default_rng(7))
    return config, agent, env


@pytest.fixture(scope="module")
def tabular_agent_env():
    config = GridTabularConfig.fast()
    agent, env, _ = train_tabular(config, np.random.default_rng(7))
    return config, agent, env


# --------------------------------------------------------------------------- #
# Stacked network forwards
# --------------------------------------------------------------------------- #
class TestForwardReplicasParity:
    @pytest.mark.parametrize("replicas", [1, 3, 8])
    def test_mlp_per_replica_weights(self, rng, replicas):
        net = Sequential(
            [Dense(6, 10, name="fc1", rng=rng), ReLU(), Dense(10, 4, name="fc2", rng=rng)]
        )
        x = rng.normal(size=(replicas, 2, 6))
        stacks = {
            "fc1": {
                "weight": rng.normal(size=(replicas, 6, 10)),
                "bias": rng.normal(size=(replicas, 10)),
            }
        }
        out = net.forward_replicas(x, stacks)
        for r in range(replicas):
            saved = net.state_dict()
            net.layers[0].weight[...] = stacks["fc1"]["weight"][r]
            net.layers[0].bias[...] = stacks["fc1"]["bias"][r]
            expected = net.forward(x[r])
            net.load_state_dict(saved)
            assert np.array_equal(out[r], expected)

    def test_mlp_shared_weights(self, rng):
        net = Sequential([Dense(5, 7, rng=rng), ReLU(), Dense(7, 3, rng=rng)])
        x = rng.normal(size=(4, 1, 5))
        out = net.forward_replicas(x)
        for r in range(4):
            assert np.array_equal(out[r], net.forward(x[r]))

    def test_conv_stack_per_replica_weights(self, rng):
        net = Sequential(
            [
                Conv2D(1, 4, 3, name="c1", rng=rng),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 5 * 5, 3, name="f", rng=rng),
            ]
        )
        replicas = 5
        x = rng.normal(size=(replicas, 2, 1, 12, 12))
        stacks = {
            "c1": {
                "weight": rng.normal(size=(replicas, 4, 1, 3, 3)),
                "bias": rng.normal(size=(replicas, 4)),
            },
            "f": {
                "weight": rng.normal(size=(replicas, 100, 3)),
                "bias": rng.normal(size=(replicas, 3)),
            },
        }
        out = net.forward_replicas(x, stacks)
        for r in range(replicas):
            saved = net.state_dict()
            for layer_name, params in stacks.items():
                layer = net.layer_by_name(layer_name)
                layer.set_params({k: v[r] for k, v in params.items()})
            expected = net.forward(x[r])
            net.load_state_dict(saved)
            assert np.array_equal(out[r], expected)


# --------------------------------------------------------------------------- #
# Stacked quantize -> inject -> dequantize
# --------------------------------------------------------------------------- #
class TestStackedInjectionParity:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=["transient", "sa0", "sa1"])
    @pytest.mark.parametrize("replicas", [1, 3, 8])
    def test_stacked_patterns_equal_scalar_applies(self, model, replicas):
        values = np.random.default_rng(3).normal(0, 0.5, size=(6, 7))
        unit = QTensor(values, Q16_NARROW, name="buf")
        rngs = [np.random.default_rng(100 + r) for r in range(replicas)]
        patterns = [model.sample_pattern(unit, rng) for rng in rngs]

        stacked = unit.replicate(replicas)
        apply_patterns_stacked(patterns, stacked)

        for r in range(replicas):
            scalar = unit.copy()
            patterns[r].apply(scalar)
            assert np.array_equal(stacked.raw[r], scalar.raw)
            assert np.array_equal(stacked.values[r], scalar.values)

    def test_quantize_inject_dequantize_executor(self, rng):
        net = build_grid_q_network(20, 4, hidden_sizes=(12,), rng=rng)
        replicas = 6
        x = np.stack([np.eye(20)[r][None] for r in range(replicas)])
        for model in ALL_MODELS:
            scalar_out = []
            for r in range(replicas):
                executor = QuantizedExecutor(net, Q16_NARROW)
                trial_rng = np.random.default_rng(50 + r)
                executor.apply_weight_faults(
                    lambda name, tensor: model.inject(tensor, trial_rng)
                )
                scalar_out.append(executor.forward(x[r]))
                executor.restore_clean_weights()

            evaluator = BatchedEvaluator(net, Q16_NARROW, replicas)
            evaluator.inject_weight_faults(
                model, [np.random.default_rng(50 + r) for r in range(replicas)]
            )
            out = evaluator.forward(x)
            for r in range(replicas):
                assert np.array_equal(out[r], scalar_out[r])

    def test_clean_batched_executor_equals_scalar(self, rng):
        net = build_grid_q_network(15, 3, hidden_sizes=(8,), rng=rng)
        replicas = 4
        x = np.stack([np.eye(15)[r][None] for r in range(replicas)])
        batched = BatchedQuantizedExecutor(net, Q16_NARROW, replicas)
        out = batched.forward(x)
        for r in range(replicas):
            assert np.array_equal(out[r], QuantizedExecutor(net, Q16_NARROW).forward(x[r]))

    def test_subset_forward_uses_selected_replica_weights(self, rng):
        net = build_grid_q_network(15, 3, hidden_sizes=(8,), rng=rng)
        replicas = 5
        evaluator = BatchedEvaluator(net, Q16_NARROW, replicas)
        evaluator.inject_weight_faults(
            TransientBitFlip(0.05),
            [np.random.default_rng(r) for r in range(replicas)],
        )
        x = np.stack([np.eye(15)[r][None] for r in range(replicas)])
        full = evaluator.forward(x)
        subset = np.array([4, 1, 2])
        out = evaluator.forward(x[subset], replicas=subset)
        for j, r in enumerate(subset):
            assert np.array_equal(out[j], full[r])


# --------------------------------------------------------------------------- #
# Batched greedy evaluation
# --------------------------------------------------------------------------- #
class TestBatchedRolloutParity:
    @pytest.mark.parametrize("replicas", [1, 3, 8])
    def test_gridworld_batch_matches_scalar_rollouts(self, replicas):
        from repro.rl.evaluation import as_batched_policy, greedy_rollout, greedy_rollouts

        def make_policy(seed):
            policy_rng = np.random.default_rng(seed)
            return lambda state: int(policy_rng.integers(4))

        scalar = [
            greedy_rollout(make_policy(seed), make_gridworld("middle"), max_steps=40)
            for seed in range(replicas)
        ]
        batched = greedy_rollouts(
            as_batched_policy([make_policy(seed) for seed in range(replicas)]),
            make_gridworld("middle").batched(replicas),
            max_steps=40,
        )
        assert batched == scalar

    def test_env_pool_matches_scalar_rollouts(self):
        from repro.rl.evaluation import as_batched_policy, greedy_rollout, greedy_rollouts

        def make_policy(seed):
            policy_rng = np.random.default_rng(seed)
            return lambda state: int(policy_rng.integers(4))

        replicas = 4
        scalar = [
            greedy_rollout(make_policy(seed), make_gridworld("low"), max_steps=30)
            for seed in range(replicas)
        ]
        pool = EnvPool([make_gridworld("low") for _ in range(replicas)])
        batched = greedy_rollouts(
            as_batched_policy([make_policy(seed) for seed in range(replicas)]),
            pool,
            max_steps=30,
        )
        assert batched == scalar

    def test_random_start_env_rejects_batching(self):
        env = make_gridworld("middle", random_start=True)
        with pytest.raises(ValueError, match="deterministic starts"):
            env.batched(3)


# --------------------------------------------------------------------------- #
# Fig. 5 trials end to end
# --------------------------------------------------------------------------- #
def _trial_seeds(n):
    return np.random.SeedSequence(99).spawn(n)


class TestFig5TrialParity:
    @pytest.mark.parametrize("mode", INFERENCE_FAULT_MODES)
    @pytest.mark.parametrize("ber", [0.0, 0.01])
    def test_nn_run_batch_equals_scalar(self, nn_agent_env, mode, ber):
        config, agent, env = nn_agent_env
        trial = _NNInferenceTrial(
            agent, env, mode, ber, config.max_steps, config.weight_qformat, 2
        )
        seeds = _trial_seeds(5)
        scalar = [trial(np.random.default_rng(seed)) for seed in seeds]
        batched = trial.run_batch([np.random.default_rng(seed) for seed in seeds])
        assert batched == scalar

    @pytest.mark.parametrize("mode", INFERENCE_FAULT_MODES)
    @pytest.mark.parametrize("ber", [0.0, 0.01])
    def test_tabular_run_batch_equals_scalar(self, tabular_agent_env, mode, ber):
        config, agent, env = tabular_agent_env
        trial = _TabularInferenceTrial(agent, env, mode, ber, config.max_steps, 2)
        seeds = _trial_seeds(5)
        scalar = [trial(np.random.default_rng(seed)) for seed in seeds]
        batched = trial.run_batch([np.random.default_rng(seed) for seed in seeds])
        assert batched == scalar

    def test_run_batch_of_one_equals_scalar(self, tabular_agent_env):
        config, agent, env = tabular_agent_env
        trial = _TabularInferenceTrial(agent, env, "transient-m", 0.02, config.max_steps, 2)
        (seed,) = _trial_seeds(1)
        assert trial.run_batch([np.random.default_rng(seed)]) == [
            trial(np.random.default_rng(seed))
        ]

    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_batched_runner_campaign_equals_serial(self, nn_agent_env, batch_size):
        # Repetitions deliberately not divisible by the batch size, so the
        # final (ragged) batch exercises a smaller stacked evaluator.
        config, agent, env = nn_agent_env
        trial = _NNInferenceTrial(
            agent, env, "stuck-at-1", 0.01, config.max_steps, config.weight_qformat, 2
        )
        campaign = Campaign("parity-fig5", repetitions=7, seed=11)
        serial = campaign.run(trial, runner=SerialRunner())
        batched = campaign.run(trial, runner=BatchedRunner(batch_size=batch_size))
        assert [o.metric for o in batched.outcomes] == [o.metric for o in serial.outcomes]


# --------------------------------------------------------------------------- #
# Drone batched environment
# --------------------------------------------------------------------------- #
import dataclasses

from repro.core.sites import BufferSelector
from repro.envs.drone import DroneNavEnvBatch, make_drone_env
from repro.experiments.common import build_drone_bundle
from repro.experiments.config import DroneConfig
from repro.experiments.fig7_drone import _DroneMSFTrial
from repro.quant import Q16_MID


@pytest.fixture(scope="module")
def drone_bundle():
    config = dataclasses.replace(DroneConfig.fast(), max_eval_steps=25)
    return build_drone_bundle(config, seed=3)


class TestDroneEnvBatchParity:
    @pytest.mark.parametrize("replicas", [1, 3, 8])
    def test_lockstep_equals_scalar(self, replicas):
        template = make_drone_env("indoor-long", image_size=16)
        batch = template.batched(replicas)
        scalars = [make_drone_env("indoor-long", image_size=16) for _ in range(replicas)]
        batch_states = batch.reset_all()
        for r, env in enumerate(scalars):
            assert np.array_equal(batch_states[r], env.reset())
        rng = np.random.default_rng(42)
        active = list(range(replicas))
        for _ in range(60):
            if not active:
                break
            actions = rng.integers(0, template.n_actions, size=len(active))
            states, rewards, dones, infos = batch.step_many(actions, active)
            still_active = []
            for j, r in enumerate(active):
                state, reward, done, info = scalars[r].step(int(actions[j]))
                assert np.array_equal(states[j], state)
                assert rewards[j] == reward
                assert bool(dones[j]) == done
                assert infos[j] == info
                if not done:
                    still_active.append(r)
            active = still_active

    def test_stall_rollback_matches_scalar(self):
        # A hard-left loiter stalls; the batched env must roll flight
        # distance back to the same value the scalar env reports.
        batch = make_drone_env("indoor-long", image_size=16).batched(2)
        scalar = make_drone_env("indoor-long", image_size=16)
        batch.reset_all()
        scalar.reset()
        done = False
        while not done:
            states, rewards, dones, infos = batch.step_many([0, 0], [0, 1])
            state, reward, done, info = scalar.step(0)
            assert np.array_equal(states[0], state)
            assert rewards[0] == reward and bool(dones[0]) == done
            assert infos[0] == info

    def test_validates_replicas_and_actions(self):
        template = make_drone_env("indoor-long", image_size=16)
        with pytest.raises(ValueError, match="n_replicas"):
            DroneNavEnvBatch(template, 0)
        batch = template.batched(2)
        with pytest.raises(ValueError):
            batch.step_many([99, 0], [0, 1])
        with pytest.raises(ValueError):
            batch.step_many([0], [0, 1])


# --------------------------------------------------------------------------- #
# Fig. 7 trials end to end
# --------------------------------------------------------------------------- #
DRONE_FAULT_CASES = {
    "weight": dict(weight_fault=TransientBitFlip(1e-3)),
    "weight-layer": dict(
        weight_fault=TransientBitFlip(5e-3),
        weight_selector=BufferSelector.for_layer("conv2"),
    ),
    "act-transient": dict(
        activation_fault=TransientBitFlip(1e-3), activation_mode="transient"
    ),
    "act-permanent": dict(
        activation_fault=StuckAtFault(1e-3, stuck_value=1),
        activation_mode="permanent",
    ),
    "input": dict(input_fault=TransientBitFlip(1e-3)),
    "qformat": dict(qformat=Q16_MID, weight_fault=TransientBitFlip(1e-3)),
}


class TestFig7TrialParity:
    @pytest.mark.parametrize("case", sorted(DRONE_FAULT_CASES))
    def test_run_batch_equals_scalar(self, drone_bundle, case):
        trial = _DroneMSFTrial(drone_bundle, "indoor-long", **DRONE_FAULT_CASES[case])
        seeds = _trial_seeds(3)
        scalar = [trial(np.random.default_rng(seed)) for seed in seeds]
        batched = trial.run_batch([np.random.default_rng(seed) for seed in seeds])
        assert batched == scalar

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_weight_fault_batch_sizes(self, drone_bundle, batch_size):
        trial = _DroneMSFTrial(
            drone_bundle, "indoor-long", weight_fault=TransientBitFlip(1e-3)
        )
        seeds = _trial_seeds(batch_size)
        scalar = [trial(np.random.default_rng(seed)) for seed in seeds]
        batched = trial.run_batch([np.random.default_rng(seed) for seed in seeds])
        assert batched == scalar

    def test_envpool_backend_equals_scalar(self, drone_bundle):
        # The generic EnvPool fallback must stay exact too — it guards the
        # native batch and serves environments without one.
        trial = _DroneMSFTrial(
            drone_bundle,
            "indoor-long",
            weight_fault=TransientBitFlip(1e-3),
            env_backend="pool",
        )
        seeds = _trial_seeds(3)
        scalar = [trial(np.random.default_rng(seed)) for seed in seeds]
        batched = trial.run_batch([np.random.default_rng(seed) for seed in seeds])
        assert batched == scalar

    def test_batched_runner_campaign_equals_serial(self, drone_bundle):
        # Repetitions not divisible by the batch size: the final ragged
        # batch exercises a smaller evaluator and environment batch.
        trial = _DroneMSFTrial(
            drone_bundle, "indoor-long", weight_fault=TransientBitFlip(1e-3)
        )
        campaign = Campaign("parity-fig7", repetitions=5, seed=11)
        serial = campaign.run(trial, runner=SerialRunner())
        batched = campaign.run(trial, runner=BatchedRunner(batch_size=2))
        assert [o.metric for o in batched.outcomes] == [o.metric for o in serial.outcomes]
