"""Tests for the campaign execution engines and checkpoint/resume."""

import numpy as np
import pytest

from repro.core import (
    BatchedRunner,
    Campaign,
    CampaignResult,
    ParallelRunner,
    SerialRunner,
    TrialExecutionError,
    TrialOutcome,
    make_runner,
    supports_batching,
)
from repro.core.runner import (
    default_batch_size,
    default_workers,
    parse_batch_size,
    parse_worker_count,
)
from repro.experiments.common import campaign_checkpoint_path, run_campaign
from repro.io.results import CampaignCheckpoint


def stochastic_trial(rng: np.random.Generator) -> TrialOutcome:
    """A trial whose entire outcome is derived from its per-trial RNG."""
    return TrialOutcome(
        success=bool(rng.random() < 0.5),
        metric=float(rng.normal()),
        extras={"steps": float(rng.integers(1, 100))},
    )


def outcome_tuples(result: CampaignResult):
    return [(o.success, o.metric, tuple(sorted(o.extras.items()))) for o in result.outcomes]


class TestParallelDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_serial_bit_identically(self, workers):
        campaign = Campaign("parity", repetitions=24, seed=1234)
        serial = campaign.run(stochastic_trial, runner=SerialRunner())
        parallel = campaign.run(
            stochastic_trial, runner=ParallelRunner(workers=workers)
        )
        assert outcome_tuples(parallel) == outcome_tuples(serial)
        assert parallel.summary() == serial.summary()

    def test_chunk_size_does_not_affect_results(self):
        campaign = Campaign("chunks", repetitions=10, seed=7)
        serial = campaign.run(stochastic_trial, runner=SerialRunner())
        for chunk in (1, 3, 10):
            parallel = campaign.run(
                stochastic_trial, runner=ParallelRunner(workers=2, chunk_size=chunk)
            )
            assert outcome_tuples(parallel) == outcome_tuples(serial)

    def test_closure_trials_work_in_workers(self):
        offset = 10.0
        campaign = Campaign("closure", repetitions=6, seed=2)
        result = campaign.run(
            lambda rng: TrialOutcome(metric=offset + float(rng.random())),
            runner=ParallelRunner(workers=2),
        )
        assert result.repetitions == 6
        assert all(o.metric >= offset for o in result.outcomes)


class BatchableTrial:
    """A trial with a vectorized path, instrumented to prove it was used."""

    def __init__(self):
        self.batch_sizes = []
        self.scalar_calls = 0

    def __call__(self, rng):
        self.scalar_calls += 1
        return stochastic_trial(rng)

    def run_batch(self, rngs):
        self.batch_sizes.append(len(rngs))
        return [stochastic_trial(rng) for rng in rngs]


class TestBatchedDeterminism:
    """Seeded-RNG regression: BatchedRunner pins to SerialRunner goldens."""

    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batched_matches_serial_goldens(self, batch_size, workers):
        campaign = Campaign("batch-parity", repetitions=19, seed=321)
        serial = campaign.run(stochastic_trial, runner=SerialRunner())
        batched = campaign.run(
            stochastic_trial,
            runner=BatchedRunner(batch_size=batch_size, workers=workers),
        )
        assert outcome_tuples(batched) == outcome_tuples(serial)
        assert batched.summary() == serial.summary()

    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_batchable_trial_matches_serial_goldens(self, batch_size):
        campaign = Campaign("batch-vec", repetitions=10, seed=55)
        serial = campaign.run(BatchableTrial(), runner=SerialRunner())
        trial = BatchableTrial()
        batched = campaign.run(trial, runner=BatchedRunner(batch_size=batch_size))
        assert outcome_tuples(batched) == outcome_tuples(serial)
        # The vectorized path really ran: full batches plus a ragged tail.
        assert trial.scalar_calls == 0
        assert sum(trial.batch_sizes) == 10
        assert max(trial.batch_sizes) <= batch_size

    def test_ragged_final_batch_sizes(self):
        trial = BatchableTrial()
        Campaign("ragged", repetitions=10, seed=1).run(
            trial, runner=BatchedRunner(batch_size=4)
        )
        assert trial.batch_sizes == [4, 4, 2]

    def test_checkpoint_resume_under_batched_runner(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        campaign = Campaign("batch-resume", repetitions=11, seed=13)
        first = campaign.run(stochastic_trial, checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:6]) + "\n")  # keep 5 of 11 outcomes
        resumed = campaign.run(
            BatchableTrial(),
            runner=BatchedRunner(batch_size=3, workers=2),
            checkpoint=path,
            resume=True,
        )
        assert outcome_tuples(resumed) == outcome_tuples(first)

    def test_run_batch_wrong_length_rejected(self):
        class Broken(BatchableTrial):
            def run_batch(self, rngs):
                return super().run_batch(rngs)[:-1]

        with pytest.raises((ValueError, TrialExecutionError)):
            Campaign("short", repetitions=4, seed=0).run(
                Broken(), runner=BatchedRunner(batch_size=4)
            )

    def test_scalar_fallback_errors_name_the_exact_trial(self):
        # A non-batchable trial failing inside a remote batch must report the
        # failing trial's index, not the batch's first index.  The victim is
        # identified by its (deterministic) first RNG draw and deliberately
        # chosen not to be the first trial of its batch.
        campaign = Campaign("exact-index", repetitions=8, seed=0)
        draws = [np.random.default_rng(seed).random() for seed in campaign.trial_seeds()]
        victim = 6
        assert victim % 4 != 0  # not a batch head under batch_size=4

        def explodes_on_victim(rng):
            value = rng.random()
            if value == draws[victim]:
                raise ValueError("victim trial failed")
            return TrialOutcome(metric=value)

        with pytest.raises(TrialExecutionError, match="victim trial failed") as excinfo:
            campaign.run(
                explodes_on_victim, runner=BatchedRunner(batch_size=4, workers=2)
            )
        assert excinfo.value.trial_index == victim

    def test_batch_errors_surface_from_workers(self):
        class Exploding(BatchableTrial):
            def run_batch(self, rngs):
                raise RuntimeError("vectorized failure")

        with pytest.raises(TrialExecutionError, match="vectorized failure") as excinfo:
            Campaign("boom", repetitions=6, seed=0).run(
                Exploding(), runner=BatchedRunner(batch_size=3, workers=2)
            )
        assert "RuntimeError" in excinfo.value.worker_traceback

    def test_supports_batching_detection(self):
        assert supports_batching(BatchableTrial())
        assert not supports_batching(stochastic_trial)


class TestCrashSurfacing:
    def test_worker_crash_raises_trial_execution_error(self):
        def exploding(rng):
            raise ValueError("simulated trial failure")

        campaign = Campaign("crash", repetitions=4, seed=0)
        with pytest.raises(TrialExecutionError) as excinfo:
            campaign.run(exploding, runner=ParallelRunner(workers=2))
        assert "simulated trial failure" in str(excinfo.value)
        assert 0 <= excinfo.value.trial_index < 4
        assert "ValueError" in excinfo.value.worker_traceback

    def test_bad_return_type_surfaces_from_workers(self):
        campaign = Campaign("badtype", repetitions=2, seed=0)
        with pytest.raises(TrialExecutionError, match="TrialOutcome"):
            campaign.run(lambda rng: 42, runner=ParallelRunner(workers=2))

    def test_serial_exceptions_propagate_unwrapped(self):
        def exploding(rng):
            raise ValueError("serial failure")

        with pytest.raises(ValueError, match="serial failure"):
            Campaign("crash", 3).run(exploding, runner=SerialRunner())


class TestCheckpointResume:
    def test_resume_after_interrupt_matches_uninterrupted(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        campaign = Campaign("resume", repetitions=10, seed=42)

        calls = {"n": 0}

        def dies_after_four(rng):
            if calls["n"] >= 4:
                raise RuntimeError("simulated kill")
            calls["n"] += 1
            return stochastic_trial(rng)

        with pytest.raises(RuntimeError):
            campaign.run(dies_after_four, checkpoint=path)

        # The four completed trials survived the crash on disk.
        partial = CampaignCheckpoint(path).load(campaign)
        assert sorted(partial) == [0, 1, 2, 3]

        resumed = campaign.run(stochastic_trial, checkpoint=path, resume=True)
        uninterrupted = Campaign("resume", repetitions=10, seed=42).run(stochastic_trial)
        assert outcome_tuples(resumed) == outcome_tuples(uninterrupted)
        assert resumed.summary() == uninterrupted.summary()

    def test_resume_with_parallel_runner(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        campaign = Campaign("resume-par", repetitions=12, seed=5)
        first = campaign.run(stochastic_trial, checkpoint=path)

        # Drop half the lines to simulate an interrupted parallel run.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:7]) + "\n")

        resumed = campaign.run(
            stochastic_trial,
            runner=ParallelRunner(workers=2),
            checkpoint=path,
            resume=True,
        )
        assert outcome_tuples(resumed) == outcome_tuples(first)

    def test_fully_checkpointed_campaign_runs_no_trials(self, tmp_path):
        path = tmp_path / "done.jsonl"
        campaign = Campaign("done", repetitions=5, seed=3)
        first = campaign.run(stochastic_trial, checkpoint=path)

        def must_not_run(rng):
            raise AssertionError("no trial should execute on a complete checkpoint")

        resumed = campaign.run(must_not_run, checkpoint=path, resume=True)
        assert outcome_tuples(resumed) == outcome_tuples(first)

    def test_without_resume_checkpoint_is_overwritten(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        campaign = Campaign("fresh", repetitions=3, seed=9)
        campaign.run(stochastic_trial, checkpoint=path)
        campaign.run(stochastic_trial, checkpoint=path)  # resume=False
        # Header + exactly one line per trial (no accumulation across runs).
        assert len(path.read_text().splitlines()) == 4

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        Campaign("original", repetitions=4, seed=1).run(stochastic_trial, checkpoint=path)
        for other in (
            Campaign("different-name", 4, seed=1),
            Campaign("original", 5, seed=1),
            Campaign("original", 4, seed=2),
        ):
            with pytest.raises(ValueError, match="different campaign"):
                other.run(stochastic_trial, checkpoint=path, resume=True)

    def test_truncated_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        campaign = Campaign("torn", repetitions=6, seed=8)
        campaign.run(stochastic_trial, checkpoint=path)
        path.write_text(path.read_text()[:-20])  # tear the final write
        resumed = campaign.run(stochastic_trial, checkpoint=path, resume=True)
        reference = Campaign("torn", repetitions=6, seed=8).run(stochastic_trial)
        assert outcome_tuples(resumed) == outcome_tuples(reference)

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="requires a checkpoint"):
            Campaign("nock", 2).run(stochastic_trial, resume=True)

    def test_outcome_json_round_trip(self):
        outcome = TrialOutcome(success=False, metric=1.5, extras={"steps": 3.0})
        assert TrialOutcome.from_json_dict(outcome.to_json_dict()) == outcome
        empty = TrialOutcome()
        assert TrialOutcome.from_json_dict(empty.to_json_dict()) == empty


class TestProgressReporting:
    def test_progress_counts_every_trial(self):
        seen = []
        Campaign("prog", repetitions=5, seed=0).run(
            stochastic_trial, progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(i, 5) for i in range(1, 6)]

    def test_progress_includes_checkpointed_trials(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        campaign = Campaign("prog2", repetitions=6, seed=1)
        campaign.run(stochastic_trial, checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")  # keep 2 of 6 outcomes

        seen = []
        campaign.run(
            stochastic_trial,
            checkpoint=path,
            resume=True,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[0] == (2, 6)
        assert seen[-1] == (6, 6)


class TestRunnerResolution:
    def test_make_runner_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_WORKERS", raising=False)
        assert isinstance(make_runner(), SerialRunner)
        assert isinstance(make_runner(1), SerialRunner)
        assert isinstance(make_runner(3), ParallelRunner)

    def test_workers_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "4")
        assert default_workers() == 4
        runner = make_runner()
        assert isinstance(runner, ParallelRunner) and runner.workers == 4
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "auto")
        assert default_workers() >= 1
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "bogus")
        with pytest.raises(ValueError):
            default_workers()
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "0")
        with pytest.raises(ValueError):
            default_workers()

    def test_parse_worker_count(self):
        assert parse_worker_count(3) == 3
        assert parse_worker_count("5") == 5
        assert parse_worker_count("auto") >= 1
        for bad in ("x", "0", 0, -2):
            with pytest.raises(ValueError):
                parse_worker_count(bad)

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            make_runner(0)
        with pytest.raises(ValueError):
            ParallelRunner(workers=-1)
        with pytest.raises(ValueError):
            ParallelRunner(chunk_size=0)

    def test_make_runner_batch_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_BATCH", raising=False)
        assert isinstance(make_runner(1, 1), SerialRunner)
        runner = make_runner(1, 8)
        assert isinstance(runner, BatchedRunner) and runner.batch_size == 8
        combined = make_runner(4, 8)
        assert isinstance(combined, BatchedRunner)
        assert combined.batch_size == 8 and combined.workers == 4
        with pytest.raises(ValueError):
            make_runner(1, 0)

    def test_batch_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "6")
        assert default_batch_size() == 6
        runner = make_runner()
        assert isinstance(runner, BatchedRunner) and runner.batch_size == 6
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "bogus")
        with pytest.raises(ValueError):
            default_batch_size()
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "0")
        with pytest.raises(ValueError):
            default_batch_size()
        monkeypatch.delenv("REPRO_CAMPAIGN_BATCH")
        assert default_batch_size() == 1

    def test_parse_batch_size(self):
        assert parse_batch_size(4) == 4
        assert parse_batch_size("12") == 12
        for bad in ("x", "0", 0, -3):
            with pytest.raises(ValueError):
                parse_batch_size(bad)

    def test_invalid_batched_runner_rejected(self):
        with pytest.raises(ValueError):
            BatchedRunner(batch_size=0)
        with pytest.raises(ValueError):
            BatchedRunner(batch_size=2, workers=0)

    def test_batch_env_var_drives_campaign_run(self, monkeypatch):
        campaign = Campaign("envbatch", repetitions=9, seed=17)
        monkeypatch.delenv("REPRO_CAMPAIGN_BATCH", raising=False)
        serial = campaign.run(stochastic_trial)
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "4")
        batched = campaign.run(stochastic_trial)
        assert outcome_tuples(batched) == outcome_tuples(serial)

    def test_env_var_drives_campaign_run(self, monkeypatch):
        campaign = Campaign("envpar", repetitions=8, seed=6)
        monkeypatch.delenv("REPRO_CAMPAIGN_WORKERS", raising=False)
        serial = campaign.run(stochastic_trial)
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "2")
        parallel = campaign.run(stochastic_trial)
        assert outcome_tuples(parallel) == outcome_tuples(serial)


class TestRunCampaignHelper:
    def test_checkpoint_dir_and_resume(self, tmp_path):
        campaign = Campaign("fig0-demo-ber0.5", repetitions=4, seed=0)
        first = run_campaign(campaign, stochastic_trial, checkpoint_dir=tmp_path)
        assert campaign_checkpoint_path(campaign.name, tmp_path).exists()
        resumed = run_campaign(
            campaign, stochastic_trial, checkpoint_dir=tmp_path, resume=True, workers=2
        )
        assert outcome_tuples(resumed) == outcome_tuples(first)

    def test_checkpoint_name_sanitized(self, tmp_path):
        path = campaign_checkpoint_path("fig7e-Q(1,4,11)-ber0.01", tmp_path)
        assert path.name == "fig7e-Q_1_4_11_-ber0.01.jsonl"


class TestGradedOutcomeConsistency:
    """Regression: num_successes must grade the same subset as success_rate."""

    def test_mixed_none_true_false(self):
        result = CampaignResult(
            name="mixed",
            outcomes=[
                TrialOutcome(success=None, metric=1.0),
                TrialOutcome(success=True),
                TrialOutcome(success=False),
                TrialOutcome(success=True),
                TrialOutcome(success=None, metric=0.5),
            ],
        )
        assert result.repetitions == 5
        assert result.num_graded == 3
        assert result.num_successes == 2
        assert result.success_rate == pytest.approx(2 / 3)
        assert result.num_successes == result.success_rate * result.num_graded
        low, high = result.success_confidence()
        assert 0.0 <= low <= result.success_rate <= high <= 1.0

    def test_all_ungraded_raises(self):
        result = CampaignResult(
            name="ungraded", outcomes=[TrialOutcome(metric=1.0)] * 3
        )
        assert result.num_successes == 0
        assert result.num_graded == 0
        with pytest.raises(ValueError):
            _ = result.success_rate
        assert "success_rate" not in result.summary()
