"""Tests for the declarative experiment API (repro.api).

Covers the ExecutionConfig contract (validation, env resolution, the
legacy-knob shim), the experiment registry, artifact serialization, and the
acceptance-critical differential guarantee: ``repro.api.run(name,
execution=...)`` is bit-identical to the corresponding legacy ``run_*`` call
for the same seed, across the serial / parallel / batched engines.
"""

import warnings

import pytest

from repro import api
from repro.api import ExecutionConfig, ExperimentArtifact
from repro.api.execution import resolve_execution
from repro.experiments import GridNNConfig, GridTabularConfig
from repro.experiments.registry import (
    ParamSpec,
    figures,
    get_spec,
    list_specs,
    specs_for_figure,
)
from repro.io.results import ResultTable


class TestExecutionConfig:
    def test_defaults_defer_to_environment(self):
        config = ExecutionConfig()
        assert config.workers is None and config.batch_size is None
        assert config.repetitions is None and config.scale is None

    def test_zero_repetitions_raises(self):
        # repetitions=0 used to silently mean "use the config default".
        with pytest.raises(ValueError, match="repetitions"):
            ExecutionConfig(repetitions=0)

    @pytest.mark.parametrize("field", ["workers", "batch_size"])
    @pytest.mark.parametrize("bad", [0, -1, "bogus"])
    def test_invalid_engine_knobs_raise(self, field, bad):
        with pytest.raises(ValueError, match=field):
            ExecutionConfig(**{field: bad})

    def test_auto_workers_normalized(self):
        assert ExecutionConfig(workers="auto").workers >= 1
        assert ExecutionConfig(workers="3").workers == 3

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ExecutionConfig(resume=True)
        config = ExecutionConfig(checkpoint_dir="runs", resume=True)
        assert config.resume and str(config.checkpoint_dir) == "runs"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(scale="bogus")

    def test_resolved_pins_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "3")
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "5")
        monkeypatch.setenv("REPRO_SCALE", "medium")
        resolved = ExecutionConfig().resolved()
        assert resolved.workers == 3
        assert resolved.batch_size == 5
        assert resolved.scale == "medium"
        # Explicit knobs win over the environment.
        explicit = ExecutionConfig(workers=1, batch_size=1, scale="small").resolved()
        assert (explicit.workers, explicit.batch_size, explicit.scale) == (1, 1, "small")

    def test_resolved_defaults_without_environment(self, monkeypatch):
        for var in ("REPRO_CAMPAIGN_WORKERS", "REPRO_CAMPAIGN_BATCH", "REPRO_SCALE"):
            monkeypatch.delenv(var, raising=False)
        resolved = ExecutionConfig().resolved()
        assert (resolved.workers, resolved.batch_size, resolved.scale) == (1, 1, "small")
        assert resolved.repetitions is None  # config presets keep owning reps

    def test_engine_description(self):
        assert ExecutionConfig(workers=1, batch_size=1).engine_description() == "serial"
        assert "parallel" in ExecutionConfig(workers=4, batch_size=1).engine_description()
        assert "batched" in ExecutionConfig(workers=1, batch_size=8).engine_description()
        combined = ExecutionConfig(workers=4, batch_size=8).engine_description()
        assert "batched" in combined and "workers" in combined

    def test_resolve_repetitions(self):
        assert ExecutionConfig(repetitions=7).resolve_repetitions(3) == 7
        assert ExecutionConfig().resolve_repetitions(3) == 3

    def test_replace_and_roundtrip(self):
        config = ExecutionConfig(seed=5, workers=2, checkpoint_dir="runs", resume=True)
        assert config.replace(seed=9).seed == 9
        assert ExecutionConfig.from_json_dict(config.to_json_dict()) == config


class TestResolveExecution:
    def test_execution_object_wins(self):
        config = ExecutionConfig(seed=3)
        assert resolve_execution(config) is config

    def test_mixing_styles_raises(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_execution(ExecutionConfig(), workers=2)
        with pytest.raises(TypeError, match="not both"):
            resolve_execution(ExecutionConfig(), seed=1)
        # An explicit seed=0 is still mixing (None is the "unset" sentinel).
        with pytest.raises(TypeError, match="seed"):
            resolve_execution(ExecutionConfig(seed=7), seed=0)

    def test_legacy_knobs_fold_and_warn(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            config = resolve_execution(None, seed=1, repetitions=4, workers=2)
        assert (config.seed, config.repetitions, config.workers) == (1, 4, 2)

    def test_plain_seed_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = resolve_execution(None, seed=2)
        assert config.seed == 2

    def test_legacy_zero_repetitions_raises(self):
        # The old `repetitions or config.repetitions` idiom is gone for good.
        with pytest.raises(ValueError, match="repetitions"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                resolve_execution(None, repetitions=0)


class TestDriverValidation:
    def test_drivers_reject_zero_repetitions(self):
        from repro.experiments.fig2_training import run_transient_training_heatmap
        from repro.experiments.fig5_inference import run_inference_fault_sweep

        config = GridTabularConfig.fast()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="repetitions"):
                run_inference_fault_sweep(config, [0.01], repetitions=0)
            with pytest.raises(ValueError, match="repetitions"):
                run_transient_training_heatmap(config, [0.01], [0], repetitions=0)


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        paper_figures = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "summary",
        ]
        # Test suites may register extra specs (e.g. sweep_testlib's
        # synthetic figure); the paper figures must all be present, in
        # natural order, with figN groups before named groups.
        registered = figures()
        assert [fig for fig in registered if fig in paper_figures] == paper_figures
        assert registered[: len(paper_figures) - 1] == paper_figures[:-1]

    def test_spec_names_are_dotted_and_described(self):
        for spec in list_specs():
            assert "." in spec.name
            assert spec.description
            assert spec.figure == spec.name.split(".")[0]

    def test_batched_specs_marked(self):
        assert get_spec("fig5.inference").batched
        assert not get_spec("fig2.transient_heatmap").batched

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_spec("fig99.bogus")

    def test_resolve_params_validates(self):
        spec = get_spec("fig5.inference")
        params = spec.resolve_params({"approach": "nn", "episodes_per_trial": "3"})
        assert params["approach"] == "nn"
        assert params["episodes_per_trial"] == 3  # coerced to the declared type
        assert params["fast"] is False  # default filled in
        with pytest.raises(TypeError, match="unknown parameter"):
            spec.resolve_params({"bogus": 1})
        with pytest.raises(ValueError, match="approach"):
            spec.resolve_params({"approach": "quantum"})
        with pytest.raises(TypeError, match="fast"):
            spec.resolve_params({"fast": "yes"})
        # Lossy numeric coercion is refused — 2.7 episodes is not a thing.
        with pytest.raises(TypeError, match="episodes_per_trial"):
            spec.resolve_params({"episodes_per_trial": 2.7})
        with pytest.raises(TypeError, match="episodes_per_trial"):
            spec.resolve_params({"episodes_per_trial": True})

    def test_param_spec_rejects_unsupported_type(self):
        with pytest.raises(TypeError, match="type"):
            ParamSpec("weird", list, [])

    def test_api_run_rejects_duplicate_param_styles(self):
        with pytest.raises(TypeError, match="both"):
            api.run("fig5.inference", {"fast": True}, fast=True)


class TestArtifact:
    def _artifact(self):
        table = ResultTable(title="demo")
        table.add(bit_error_rate=0.01, success_rate=0.5)
        return ExperimentArtifact(
            spec_name="fig5.inference",
            params={"approach": "tabular", "fast": True, "episodes_per_trial": 5},
            execution=ExecutionConfig(seed=3, batch_size=4).resolved(),
            wall_time_s=1.25,
            result=table,
        )

    def test_seed_and_engine_derive_from_execution(self):
        artifact = self._artifact()
        assert artifact.seed == 3
        assert artifact.engine == "batched(4)"

    def test_json_roundtrip(self, tmp_path):
        artifact = self._artifact()
        path = tmp_path / "artifact.json"
        artifact.to_json(path)
        restored = ExperimentArtifact.from_json(path)
        assert restored == artifact
        # The str form of the path works too (mirrors to_json's signature).
        assert ExperimentArtifact.from_json(str(path)) == artifact

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="artifact"):
            ExperimentArtifact.from_json('{"kind": "something-else"}')
        # Neither a JSON object nor an existing file: a clear ValueError, not
        # a confusing FileNotFoundError.
        with pytest.raises(ValueError, match="neither"):
            ExperimentArtifact.from_json("no-such-artifact.json")
        with pytest.raises(ValueError, match="neither"):
            ExperimentArtifact.from_json("null")

    def test_as_table_flattens_series(self):
        from repro.io.results import SeriesResult

        series = SeriesResult(title="curves", x_label="episode", x_values=[0, 1])
        series.add_series("fault-free", [1.0, 2.0])
        artifact = self._artifact()
        artifact = ExperimentArtifact(
            spec_name="fig3.return_curves",
            params=artifact.params,
            execution=artifact.execution,
            wall_time_s=0.0,
            result=series,
        )
        table = artifact.as_table()
        assert table.columns == ["episode", "fault-free"]
        restored = ExperimentArtifact.from_json(artifact.to_json())
        assert restored.result.series == series.series


# --------------------------------------------------------------------------- #
# Differential: api.run vs the legacy run_* drivers, across engines
# --------------------------------------------------------------------------- #
ENGINES = [
    pytest.param({"workers": 1, "batch_size": 1}, id="serial"),
    pytest.param({"workers": 2, "batch_size": 1}, id="workers2"),
    pytest.param({"workers": 1, "batch_size": 4}, id="batch4"),
]


@pytest.fixture(scope="module")
def legacy_fig5():
    from repro.experiments.config import grid_ber_sweep
    from repro.experiments.fig5_inference import run_inference_fault_sweep

    return run_inference_fault_sweep(
        GridTabularConfig.fast(), grid_ber_sweep(), episodes_per_trial=2
    )


@pytest.fixture(scope="module")
def legacy_fig9c():
    from repro.experiments.fig9_exploration import run_recovery_speed_correlation

    return run_recovery_speed_correlation(GridTabularConfig.fast())


@pytest.fixture(scope="module")
def legacy_fig10a():
    from repro.experiments.config import grid_ber_sweep
    from repro.experiments.fig10_anomaly import run_gridworld_anomaly_mitigation

    return run_gridworld_anomaly_mitigation(GridNNConfig.fast(), grid_ber_sweep())


class TestLegacyApiParity:
    """api.run must reproduce the legacy drivers bit-identically per engine."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fig5_inference(self, legacy_fig5, engine):
        artifact = api.run(
            "fig5.inference",
            {"fast": True, "episodes_per_trial": 2},
            execution=ExecutionConfig(**engine),
        )
        assert artifact.result.rows == legacy_fig5.rows

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fig9_recovery_correlation(self, legacy_fig9c, engine):
        artifact = api.run(
            "fig9.recovery_correlation",
            {"fast": True},
            execution=ExecutionConfig(**engine),
        )
        assert artifact.result.rows == legacy_fig9c.rows

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fig10_gridworld(self, legacy_fig10a, engine):
        artifact = api.run(
            "fig10.gridworld", {"fast": True}, execution=ExecutionConfig(**engine)
        )
        assert artifact.result.rows == legacy_fig10a.rows

    def test_fig3_series_parity(self):
        from repro.experiments.fig3_return_curves import run_return_curves

        legacy = run_return_curves(GridTabularConfig.fast(), seed=0)
        artifact = api.run("fig3.return_curves", {"fast": True})
        assert artifact.result.series == legacy.series
        assert artifact.result.x_values == legacy.x_values
